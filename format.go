package gompresso

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"gompresso/internal/deflate"
	"gompresso/internal/format"
)

// Format identifies a compressed input's container format. The codec
// serves the native Gompresso container and — per the rapidgzip-style
// two-pass pipeline in internal/deflate — the foreign formats carrying
// most real-world compressed traffic: gzip, zlib, and raw DEFLATE.
type Format int

const (
	// FormatAuto sniffs the format from the input's magic bytes: the
	// Gompresso container, gzip, and zlib are recognized; raw DEFLATE has
	// no magic and must be selected explicitly.
	FormatAuto Format = iota
	// FormatGompresso is the native container (paper Fig. 3).
	FormatGompresso
	// FormatGzip is RFC 1952 (.gz), including multi-member files.
	FormatGzip
	// FormatZlib is RFC 1950.
	FormatZlib
	// FormatDeflate is a bare RFC 1951 stream with no framing.
	FormatDeflate
)

func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatGompresso:
		return "gompresso"
	case FormatGzip:
		return "gzip"
	case FormatZlib:
		return "zlib"
	case FormatDeflate:
		return "deflate"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ErrUnknownFormat reports input whose magic bytes match no supported
// format. The concrete error is an *UnknownFormatError carrying the bytes
// that failed to match; test with errors.Is(err, ErrUnknownFormat).
var ErrUnknownFormat = errors.New("gompresso: unrecognized input format")

// Foreign-format decode failures are typed: every error from the
// gzip/zlib/deflate path is a *DeflateError wrapping one of these
// sentinels, re-exported so callers outside this module can classify with
// errors.Is and read the exact input byte offset with errors.As.
var (
	// ErrCorrupt reports structurally invalid DEFLATE data.
	ErrCorrupt = deflate.ErrCorrupt
	// ErrTruncated reports a foreign stream that ends mid-way.
	ErrTruncated = deflate.ErrTruncated
	// ErrChecksum reports a CRC-32, Adler-32, or size-field mismatch.
	ErrChecksum = deflate.ErrChecksum
	// ErrHeader reports an invalid gzip or zlib framing header.
	ErrHeader = deflate.ErrHeader
	// ErrDictionary reports a zlib stream needing a preset dictionary.
	ErrDictionary = deflate.ErrDictionary
)

// DeflateError is the concrete error type of the foreign-format decoder:
// a kind (one of the sentinels above) pinned to a compressed-input byte
// offset.
type DeflateError = deflate.Error

// UnknownFormatError wraps the first bytes (up to four) of an input that
// is neither a Gompresso container nor a recognized foreign format.
type UnknownFormatError struct {
	Magic []byte
}

func (e *UnknownFormatError) Error() string {
	return fmt.Sprintf("gompresso: unrecognized input format (magic % x)", e.Magic)
}

// Is makes errors.Is(err, ErrUnknownFormat) match.
func (e *UnknownFormatError) Is(target error) bool { return target == ErrUnknownFormat }

// DetectFormat reports the format the leading bytes of p sniff as:
// FormatGompresso, FormatGzip, or FormatZlib — or FormatAuto when the
// magic matches none of them (raw DEFLATE is indistinguishable from
// noise). Tools use it to route inputs without attempting a parse.
func DetectFormat(p []byte) Format { return sniffFormat(p) }

// sniffFormat inspects up to four leading bytes. FormatAuto means
// "unrecognized".
func sniffFormat(head []byte) Format {
	if len(head) >= 4 {
		m := format.Magic()
		if head[0] == m[0] && head[1] == m[1] && head[2] == m[2] && head[3] == m[3] {
			return FormatGompresso
		}
	}
	if len(head) >= 2 {
		if head[0] == 0x1f && head[1] == 0x8b {
			return FormatGzip
		}
		// zlib: deflate method, window ≤ 32K, header check divisible by 31.
		if head[0]&0x0f == 8 && head[0]>>4 <= 7 &&
			(uint16(head[0])<<8|uint16(head[1]))%31 == 0 {
			return FormatZlib
		}
	}
	return FormatAuto
}

// unknownFormat builds the typed error for an unrecognized prefix.
func unknownFormat(head []byte) error {
	if len(head) > 4 {
		head = head[:4]
	}
	return &UnknownFormatError{Magic: append([]byte(nil), head...)}
}

// foreignForm maps the public Format to internal/deflate's framing enum.
// Only call for the three foreign formats.
func foreignForm(f Format) deflate.Format {
	switch f {
	case FormatGzip:
		return deflate.FormatGzip
	case FormatZlib:
		return deflate.FormatZlib
	default:
		return deflate.FormatRaw
	}
}

// decompressForeign expands a foreign stream on the codec's worker budget
// and synthesizes host-engine stats for it.
func decompressForeign(data []byte, f Format, c *Codec) ([]byte, *DecompressStats, error) {
	start := time.Now()
	r, err := deflate.NewReaderBytes(c.ctx, data, foreignForm(f), deflate.Options{
		Workers: c.pipe.Workers, Readahead: c.pipe.Readahead,
	})
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	var buf bytes.Buffer
	// Output is at least ~input-sized for any stream worth decompressing;
	// growth beyond that is geometric anyway, and a ratio-based pre-grow
	// would triple peak memory on incompressible input.
	buf.Grow(len(data))
	if _, err := r.WriteTo(&buf); err != nil {
		return nil, nil, err
	}
	out := buf.Bytes()
	return out, &DecompressStats{
		RawSize:     int64(len(out)),
		CompSize:    int64(len(data)),
		HostSeconds: time.Since(start).Seconds(),
	}, nil
}
