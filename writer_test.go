package gompresso_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"gompresso"
	"gompresso/internal/datagen"
	"gompresso/internal/format"
)

// writeAll pushes src through w in odd-sized chunks so block boundaries
// never line up with Write calls.
func writeAll(t *testing.T, w *gompresso.Writer, src []byte) {
	t.Helper()
	for len(src) > 0 {
		n := 7777
		if n > len(src) {
			n = len(src)
		}
		if _, err := w.Write(src[:n]); err != nil {
			t.Fatal(err)
		}
		src = src[n:]
	}
}

// The Writer's whole contract: streaming compression is byte-identical to
// one-shot Compress across variants × DE modes × block sizes × worker
// counts × index trailer.
func TestWriterMatchesCompress(t *testing.T) {
	src := datagen.WikiXML(600_000, 7)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		for _, de := range []gompresso.DEMode{gompresso.DEOff, gompresso.DEStrict} {
			for _, blockKB := range []int{16, 128} {
				for _, index := range []bool{false, true} {
					for _, workers := range []int{1, 2, 0} {
						name := fmt.Sprintf("v%d_de%d_b%dK_idx%v_w%d", variant, de, blockKB, index, workers)
						want, _, err := gompresso.Compress(src, gompresso.Options{
							Variant: variant, DE: de, BlockSize: blockKB << 10, Index: index,
						})
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						c, err := gompresso.New(
							gompresso.WithVariant(variant),
							gompresso.WithDE(de),
							gompresso.WithBlockSize(blockKB<<10),
							gompresso.WithIndex(index),
							gompresso.WithWorkers(workers),
						)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						var buf bytes.Buffer
						w := c.NewWriter(&buf)
						writeAll(t, w, src)
						if err := w.Close(); err != nil {
							t.Fatalf("%s: close: %v", name, err)
						}
						if !bytes.Equal(buf.Bytes(), want) {
							t.Fatalf("%s: writer output differs from Compress (%d vs %d bytes)",
								name, buf.Len(), len(want))
						}
						if st := w.Stats(); st.RawSize != int64(len(src)) || st.CompSize != int64(len(want)) {
							t.Fatalf("%s: stats %+v", name, st)
						}
					}
				}
			}
		}
	}
}

// A seekable destination streams records and backpatches the header; the
// file must still be byte-identical to Compress.
func TestWriterSeekableBackpatch(t *testing.T) {
	src := datagen.WikiXML(300_000, 9)
	want, _, err := gompresso.Compress(src, gompresso.Options{
		Variant: gompresso.VariantBit, BlockSize: 32 << 10, Index: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := gompresso.New(
		gompresso.WithBlockSize(32<<10),
		gompresso.WithIndex(true),
		gompresso.WithWorkers(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.gpz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := c.NewWriter(f)
	if _, err := io.Copy(w, bytes.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("file differs from Compress (%d vs %d bytes)", len(got), len(want))
	}
}

// Writer output must round-trip through every consumer: Decompress, the
// streaming Reader, and ReaderAt.
func TestWriterRoundTrip(t *testing.T) {
	src := datagen.WikiXML(400_000, 11)
	c, err := gompresso.New(gompresso.WithBlockSize(32<<10), gompresso.WithIndex(true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := c.NewWriter(&buf)
	writeAll(t, w, src)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	comp := buf.Bytes()

	out, _, err := c.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("Decompress mismatch")
	}

	r, err := c.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, src) {
		t.Fatal("Reader mismatch")
	}

	ra, err := c.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100_000)
	if _, err := ra.ReadAt(got, 50_001); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src[50_001:150_001]) {
		t.Fatal("ReaderAt mismatch")
	}
}

// Flush drains completed blocks to a seekable destination but never cuts a
// block short: the container format requires non-final blocks to be
// exactly BlockSize, so partial-block bytes stay buffered.
func TestWriterFlushBlockBoundary(t *testing.T) {
	const bs = 16 << 10
	src := datagen.WikiXML(bs*2+bs/2, 13) // 2.5 blocks
	c, err := gompresso.New(gompresso.WithBlockSize(bs), gompresso.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flush.gpz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := c.NewWriter(f)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// After Flush the two full blocks are on disk; re-encoding them alone
	// predicts the exact file size (header + 2 records, no trailer yet).
	twoBlocks, _, err := gompresso.Compress(src[:2*bs], gompresso.Options{
		Variant: gompresso.VariantBit, BlockSize: bs,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(len(twoBlocks)) {
		t.Fatalf("after Flush: file is %d bytes, want %d (two full block records)",
			st.Size(), len(twoBlocks))
	}
	// The half block must not have been emitted — only Close seals it.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want, _, err := gompresso.Compress(src, gompresso.Options{
		Variant: gompresso.VariantBit, BlockSize: bs,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("flushed-then-closed file differs from Compress")
	}
}

// Input ending exactly on a block boundary leaves a completed block in the
// fill buffer; Flush must push it out rather than wait for the next Write.
func TestWriterFlushExactBoundary(t *testing.T) {
	const bs = 16 << 10
	src := datagen.WikiXML(bs*2, 27) // exactly 2 blocks
	for _, workers := range []int{1, 2} {
		c, err := gompresso.New(gompresso.WithBlockSize(bs), gompresso.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "exact.gpz")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := c.NewWriter(f)
		if _, err := w.Write(src); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		want, _, err := gompresso.Compress(src, gompresso.Options{
			Variant: gompresso.VariantBit, BlockSize: bs,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != int64(len(want)) {
			t.Fatalf("workers=%d: after Flush file is %d bytes, want %d (both full blocks)",
				workers, st.Size(), len(want))
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: sealed file differs from Compress", workers)
		}
	}
}

// An O_APPEND file satisfies io.WriteSeeker but the kernel ignores the
// header backpatch; Close must fail rather than seal a corrupt container.
func TestWriterAppendModeRejected(t *testing.T) {
	src := datagen.WikiXML(64<<10, 33)
	c, err := gompresso.New(gompresso.WithBlockSize(16 << 10))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(t.TempDir(), "a.gpz"),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := c.NewWriter(f)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close sealed a container on an append-mode file")
	}
}

// An empty stream still seals a valid (zero-block) container.
func TestWriterEmpty(t *testing.T) {
	for _, index := range []bool{false, true} {
		c, err := gompresso.New(gompresso.WithIndex(index))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w := c.NewWriter(&buf)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		want, _, err := gompresso.Compress(nil, gompresso.Options{
			Variant: gompresso.VariantBit, Index: index,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("index=%v: empty container differs from Compress", index)
		}
		out, _, err := c.Decompress(buf.Bytes())
		if err != nil || len(out) != 0 {
			t.Fatalf("index=%v: decompress empty: %d bytes, %v", index, len(out), err)
		}
	}
}

// Cancelling the codec context mid-write fails the stream with ctx.Err()
// and leaks no goroutines.
func TestWriterContextCancelNoLeak(t *testing.T) {
	src := datagen.WikiXML(1<<20, 17)
	runtime.GC()
	base := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		c, err := gompresso.New(
			gompresso.WithBlockSize(16<<10),
			gompresso.WithWorkers(4),
			gompresso.WithContext(ctx),
		)
		if err != nil {
			t.Fatal(err)
		}
		w := c.NewWriter(io.Discard)
		if _, err := w.Write(src[:64<<10]); err != nil {
			t.Fatal(err)
		}
		cancel()
		// The cancellation must surface from a subsequent call; keep
		// writing until it does.
		var werr error
		for j := 0; j < 100 && werr == nil; j++ {
			_, werr = w.Write(src[:16<<10])
		}
		cerr := w.Close()
		if werr == nil && cerr == nil {
			t.Fatal("cancelled writer reported no error")
		}
		for _, err := range []error{werr, cerr} {
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d at baseline", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n -= len(p); e.n < 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// A failing destination poisons the stream: the error surfaces from
// Write/Close and stays sticky.
func TestWriterDestinationError(t *testing.T) {
	src := datagen.WikiXML(512<<10, 19)
	c, err := gompresso.New(gompresso.WithBlockSize(16<<10), gompresso.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	// Spool mode defers destination writes to Close, so exercise the
	// streaming path through a pipe-backed... simpler: seekable temp file
	// replaced by errWriter is not seekable either; spool mode still
	// surfaces the error at Close.
	w := c.NewWriter(&errWriter{n: 100})
	if _, err := w.Write(src); err != nil {
		t.Fatalf("spool-mode Write should not touch the destination: %v", err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the destination error")
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write after failed Close succeeded")
	}
}

// Workers=1 must not spin up any pipeline goroutines.
func TestWriterSyncModeNoGoroutines(t *testing.T) {
	src := datagen.WikiXML(256<<10, 21)
	c, err := gompresso.New(gompresso.WithBlockSize(16<<10), gompresso.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	base := runtime.NumGoroutine()
	var buf bytes.Buffer
	w := c.NewWriter(&buf)
	writeAll(t, w, src)
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("sync writer started goroutines: %d > %d", n, base)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, _, err := c.Decompress(buf.Bytes())
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("sync round trip: %v", err)
	}
}

// The index trailer a Writer emits must be directly usable for seeks.
func TestWriterIndexTrailerSeek(t *testing.T) {
	src := datagen.WikiXML(300_000, 23)
	c, err := gompresso.New(gompresso.WithBlockSize(32<<10), gompresso.WithIndex(true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := c.NewWriter(&buf)
	writeAll(t, w, src)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h, err := format.ParseHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	idx, err := format.ParseIndexTrailer(buf.Bytes(), h)
	if err != nil {
		t.Fatalf("writer emitted no parseable index trailer: %v", err)
	}
	if idx.NumBlocks() != w.Stats().Blocks {
		t.Fatalf("trailer describes %d blocks, stats say %d", idx.NumBlocks(), w.Stats().Blocks)
	}
	r, err := c.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Seek(123_456, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10_000)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src[123_456:133_456]) {
		t.Fatal("post-seek bytes differ")
	}
}
