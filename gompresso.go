// Package gompresso is a Go reproduction of "Massively-Parallel Lossless
// Data Decompression" (Sitaridi, Mueller, Kaldewey, Lohman, Ross — ICPP
// 2016): the Gompresso compression scheme, its warp-synchronous GPU
// decompression kernels (run on a deterministic device simulator), the
// Multi-Round Resolution and Dependency Elimination strategies for nested
// back-references, and the block-parallel CPU baselines the paper compares
// against.
//
// Quick start — build a Codec once, use it for every operation:
//
//	codec, err := gompresso.New(
//		gompresso.WithDE(gompresso.DEStrict),
//		gompresso.WithIndex(true),
//	)
//	comp, _, err := codec.Compress(data)       // whole buffer...
//	w := codec.NewWriter(dst)                  // ...or stream: parallel block
//	io.Copy(w, src)                            //    compression with bounded
//	err = w.Close()                            //    memory; same bytes out
//	out, stats, err := codec.Decompress(comp)  // host fast path by default
//	r, err := codec.NewReader(bytes.NewReader(comp))   // streaming + Seek
//	ra, err := codec.NewReaderAt(file, size)           // concurrent ReadAt
//
// For serving workloads, WithCache(bytes) attaches a shared decoded-block
// cache (LRU, singleflight, zero-copy refcounted buffers) that every
// ReaderAt created from the codec draws on, and internal/server +
// `gompresso serve` expose objects over HTTP with Range semantics on the
// decompressed stream (see DESIGN.md, "Serving layer").
//
// New with no options selects the paper's defaults: Gompresso/Bit
// (LZ77 + limited-length Huffman), 256 KB blocks, 8 KB window, an
// unrestricted parse (device engine would decompress with the MRR
// strategy), GOMAXPROCS workers, and host decompression. WithDE(DEStrict)
// compresses streams the single-round DE strategy can decompress;
// WithEngine(EngineDevice) decompresses on the simulated GPU.
// Configuration mistakes are rejected at New with errors wrapping
// ErrInvalidOption, and WithContext threads cancellation through every
// pipeline.
//
// Compress, Decompress, NewReader, and NewReaderAt remain as thin per-call
// wrappers over the same machinery for callers that don't need a reusable
// codec. Note one historical wart the Codec fixes: the zero Options value
// selects Gompresso/Byte (the Variant type's zero value), while New
// defaults to Gompresso/Bit, the paper's headline configuration. The zero
// DecompressOptions value selects the simulated device engine; New
// defaults to the host engine. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced evaluation.
package gompresso

import (
	"gompresso/internal/core"
	"gompresso/internal/format"
	"gompresso/internal/gpu"
	"gompresso/internal/kernels"
	"gompresso/internal/lz77"
)

// Re-exported configuration and result types. Aliases keep the public API
// thin while the implementation lives in internal packages.
type (
	// Options configures Compress.
	Options = core.Options
	// DecompressOptions configures Decompress.
	DecompressOptions = core.DecompressOptions
	// CompressStats reports compression results.
	CompressStats = core.CompressStats
	// DecompressStats reports decompression results, including simulated
	// device time and MRR round statistics.
	DecompressStats = core.DecompressStats
	// FileHeader is the parsed container header.
	FileHeader = format.FileHeader
	// Variant selects Gompresso/Byte or Gompresso/Bit.
	Variant = format.Variant
	// Strategy selects the back-reference resolution strategy.
	Strategy = kernels.Strategy
	// DEMode selects the Dependency-Elimination parse rule.
	DEMode = lz77.DEMode
	// PCIeMode selects transfer accounting for the device engine.
	PCIeMode = core.PCIeMode
	// Engine selects the decompression implementation.
	Engine = core.Engine
	// DeviceSpec describes a simulated GPU.
	DeviceSpec = gpu.Spec
	// Device executes kernels on the simulator.
	Device = gpu.Device
)

// Compression variants (paper §III).
const (
	VariantByte = format.VariantByte
	VariantBit  = format.VariantBit
)

// Back-reference resolution strategies (paper §IV).
const (
	SC  = kernels.SC
	MRR = kernels.MRR
	DE  = kernels.DE
)

// Dependency-Elimination parse modes (paper §IV-B and DESIGN.md).
const (
	DEOff    = lz77.DEOff
	DEStrict = lz77.DEStrict
	DELit    = lz77.DELit
)

// Decompression engines and PCIe accounting modes.
const (
	EngineDevice = core.EngineDevice
	EngineHost   = core.EngineHost
	PCIeNone     = core.PCIeNone
	PCIeIn       = core.PCIeIn
	PCIeInOut    = core.PCIeInOut
)

// Compress compresses src into a Gompresso container — the per-call
// equivalent of building a Codec with these options and calling
// Codec.Compress.
func Compress(src []byte, o Options) ([]byte, *CompressStats, error) {
	return core.Compress(src, o)
}

// Decompress expands a Gompresso container. With the zero options it runs
// on a simulated Tesla K40; Codec.Decompress defaults to the host engine
// instead.
func Decompress(data []byte, o DecompressOptions) ([]byte, *DecompressStats, error) {
	return core.Decompress(data, o)
}

// Info parses and returns a container's header without decompressing.
func Info(data []byte) (FileHeader, error) { return core.Info(data) }

// TeslaK40 returns the paper's evaluation device specification.
func TeslaK40() DeviceSpec { return gpu.TeslaK40() }

// NewDevice builds a simulator for the given specification.
func NewDevice(spec DeviceSpec) (*Device, error) { return gpu.NewDevice(spec, 0) }
