package gompresso_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"math/rand"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

// foreignFixture builds a gzip stream, its oracle decode, and a SeekIndex
// captured through the facade Reader — the exact path the server uses.
func foreignFixture(t *testing.T, rawLen int, spacing int64) ([]byte, []byte, *gompresso.SeekIndex) {
	t.Helper()
	raw := datagen.WikiXML(rawLen, 1234)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	data := buf.Bytes()
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.CollectForeignIndex(spacing) {
		t.Fatal("CollectForeignIndex refused a foreign stream")
	}
	if r.ForeignIndex() != nil {
		t.Fatal("ForeignIndex non-nil before EOF")
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("foreign decode differs from input")
	}
	idx := r.ForeignIndex()
	if idx == nil {
		t.Fatal("ForeignIndex nil after EOF")
	}
	return data, raw, idx
}

// TestForeignReaderAtParity drives random ReadAt and WriteRangeTo calls
// through an index-backed foreign ReaderAt, cached and uncached, against
// the sequential oracle.
func TestForeignReaderAtParity(t *testing.T) {
	data, raw, idx := foreignFixture(t, 300<<10, 16<<10)
	if idx.NumChunks() < 4 {
		t.Fatalf("only %d chunks; fixture too coarse to test", idx.NumChunks())
	}
	for _, cached := range []bool{false, true} {
		opts := []gompresso.Option(nil)
		if cached {
			opts = append(opts, gompresso.WithCache(8<<20))
		}
		c, err := gompresso.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := c.NewReaderAtWithIndex(bytes.NewReader(data), int64(len(data)), idx)
		if err != nil {
			t.Fatalf("cached=%v: NewReaderAtWithIndex: %v", cached, err)
		}
		if ra.Size() != int64(len(raw)) {
			t.Fatalf("cached=%v: Size %d, want %d", cached, ra.Size(), len(raw))
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 60; i++ {
			off := rng.Int63n(int64(len(raw)))
			n := rng.Int63n(40 << 10)
			p := make([]byte, n)
			m, err := ra.ReadAt(p, off)
			if err != nil && err != io.EOF {
				t.Fatalf("cached=%v: ReadAt(%d,%d): %v", cached, n, off, err)
			}
			if !bytes.Equal(p[:m], raw[off:off+int64(m)]) {
				t.Fatalf("cached=%v: ReadAt(%d,%d) bytes differ", cached, n, off)
			}
			var sink bytes.Buffer
			w, err := ra.WriteRangeTo(context.Background(), &sink, off, n)
			if err != nil && err != io.EOF {
				t.Fatalf("cached=%v: WriteRangeTo(%d,%d): %v", cached, off, n, err)
			}
			if !bytes.Equal(sink.Bytes(), raw[off:off+w]) {
				t.Fatalf("cached=%v: WriteRangeTo(%d,%d) bytes differ", cached, off, n)
			}
		}
		// Whole-stream read through chunk machinery.
		all := make([]byte, len(raw))
		if _, err := ra.ReadAt(all, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(all, raw) {
			t.Fatalf("cached=%v: full ReadAt differs", cached)
		}
		if cached {
			stats := c.CacheStats()
			if stats.Hits == 0 {
				t.Fatal("cache never hit across repeated ranges")
			}
			ra.Forget()
		}
	}
}

// TestForeignReaderAtRejectsMismatch: an index built over different bytes
// must be rejected at construction (size) — the staleness gate callers
// rely on.
func TestForeignReaderAtRejectsMismatch(t *testing.T) {
	data, _, idx := foreignFixture(t, 64<<10, 16<<10)
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewReaderAtWithIndex(bytes.NewReader(data), int64(len(data))-1, idx); err == nil {
		t.Fatal("accepted index with mismatched source size")
	}
	if _, err := c.NewReaderAtWithIndex(bytes.NewReader(data), int64(len(data)), nil); err == nil {
		t.Fatal("accepted nil index")
	}
}

// TestCollectForeignIndexNative: native containers carry their own block
// index; CollectForeignIndex must refuse rather than pretend.
func TestCollectForeignIndexNative(t *testing.T) {
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := c.Compress(datagen.WikiXML(32<<10, 5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.CollectForeignIndex(0) {
		t.Fatal("CollectForeignIndex accepted a native container")
	}
	if r.ForeignIndex() != nil {
		t.Fatal("ForeignIndex non-nil for native container")
	}
}
