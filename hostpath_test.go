package gompresso_test

import (
	"bytes"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

// The fused host fast path must be byte-identical to the reference pipeline
// on all three paper corpora, for both variants and DE settings.
func TestHostFastPathMatchesReference(t *testing.T) {
	corpora := []struct {
		name   string
		data   []byte
		window int
	}{
		{"wiki", datagen.WikiXML(1<<20, 2), 0},
		{"matrix", datagen.MatrixMarket(1<<20, 2), 0},
		{"nesting", datagen.Nesting(1<<20, 8, 3), datagen.NestingWindow},
	}
	for _, c := range corpora {
		for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
			for _, de := range []gompresso.DEMode{gompresso.DEOff, gompresso.DEStrict} {
				comp, _, err := gompresso.Compress(c.data, gompresso.Options{
					Variant: variant, DE: de, Window: c.window, BlockSize: 128 << 10,
				})
				if err != nil {
					t.Fatalf("%s/%v/%v: compress: %v", c.name, variant, de, err)
				}
				fast, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
					Engine: gompresso.EngineHost,
				})
				if err != nil {
					t.Fatalf("%s/%v/%v: fast: %v", c.name, variant, de, err)
				}
				ref, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
					Engine: gompresso.EngineHost, HostReference: true,
				})
				if err != nil {
					t.Fatalf("%s/%v/%v: reference: %v", c.name, variant, de, err)
				}
				if !bytes.Equal(fast, c.data) {
					t.Fatalf("%s/%v/%v: fast path does not reproduce input", c.name, variant, de)
				}
				if !bytes.Equal(fast, ref) {
					t.Fatalf("%s/%v/%v: fast path differs from reference", c.name, variant, de)
				}
			}
		}
	}
}
