package gompresso_test

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"

	"gompresso"
	"gompresso/internal/datagen"
	"gompresso/internal/format"
)

// The streaming Reader must produce byte-identical output to Decompress for
// every variant, via both small Read calls and the WriteTo fast path.
func TestStreamingReader(t *testing.T) {
	src := datagen.WikiXML(1<<20, 3)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		comp, _, err := gompresso.Compress(src, gompresso.Options{
			Variant: variant, DE: gompresso.DEStrict, BlockSize: 128 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Odd-sized Read calls exercise the intra-block offset logic.
		r, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		if h := r.Header(); h.Variant != variant || h.RawSize != uint64(len(src)) {
			t.Fatalf("%v: header %+v", variant, h)
		}
		var got bytes.Buffer
		buf := make([]byte, 7777)
		for {
			n, err := r.Read(buf)
			got.Write(buf[:n])
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%v: read: %v", variant, err)
			}
		}
		if !bytes.Equal(got.Bytes(), src) {
			t.Fatalf("%v: Read stream mismatch", variant)
		}
		r.Close()

		// io.Copy takes the WriteTo path.
		r2, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		var got2 bytes.Buffer
		n, err := io.Copy(&got2, r2)
		if err != nil {
			t.Fatalf("%v: copy: %v", variant, err)
		}
		if n != int64(len(src)) || !bytes.Equal(got2.Bytes(), src) {
			t.Fatalf("%v: WriteTo stream mismatch (%d bytes)", variant, n)
		}
		r2.Close()
	}
}

func TestStreamingReaderTinyInputs(t *testing.T) {
	for _, size := range []int{0, 1, 3, 100} {
		src := datagen.WikiXML(1<<12, 9)[:size]
		comp, _, err := gompresso.Compress(src, gompresso.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("size %d: mismatch", size)
		}
	}
}

// A block that fails to decode must never be served. Shrinking the first
// block's declared sequence count (without changing its sub-block count)
// makes its decode fail deterministically — the stream then describes fewer
// bytes than the block header — and the Reader must return the error with
// zero bytes served, not a buffer of undecoded garbage.
func TestStreamingReaderFailedBlockNotServed(t *testing.T) {
	src := datagen.WikiXML(256<<10, 5)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	h, err := gompresso.Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	const numSeqsOff = 35 + 4 // file header + block RawLen field
	numSeqs := int(uint32(comp[numSeqsOff]) | uint32(comp[numSeqsOff+1])<<8 |
		uint32(comp[numSeqsOff+2])<<16 | uint32(comp[numSeqsOff+3])<<24)
	spb := int(h.SeqsPerSub)
	mutated := numSeqs - 1
	if mutated <= 0 || (mutated+spb-1)/spb != (numSeqs+spb-1)/spb {
		t.Skipf("block layout does not allow a same-sub-count mutation (%d seqs)", numSeqs)
	}
	mut := append([]byte(nil), comp...)
	mut[numSeqsOff] = byte(mutated)
	mut[numSeqsOff+1] = byte(mutated >> 8)
	mut[numSeqsOff+2] = byte(mutated >> 16)
	mut[numSeqsOff+3] = byte(mutated >> 24)

	r, err := gompresso.NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err == nil {
		t.Fatal("mutated stream decoded without error")
	}
	if len(got) != 0 {
		t.Fatalf("reader served %d bytes from a block whose decode failed", len(got))
	}
}

func TestStreamingReaderTruncated(t *testing.T) {
	src := datagen.WikiXML(256<<10, 4)
	comp, _, err := gompresso.Compress(src, gompresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{10, 40, len(comp) / 2, len(comp) - 1} {
		r, err := gompresso.NewReader(bytes.NewReader(comp[:cut]))
		if err != nil {
			continue // truncated header rejected at construction: fine
		}
		if _, err := io.ReadAll(r); err == nil {
			t.Fatalf("cut %d: truncated stream decoded without error", cut)
		}
	}
}

// The pipelined reader (workers > 1) must be byte-identical to the
// synchronous path for every variant, worker count, and readahead bound,
// via both small Read calls and WriteTo.
func TestStreamingReaderParallel(t *testing.T) {
	src := datagen.WikiXML(1<<20, 13)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		comp, _, err := gompresso.Compress(src, gompresso.Options{
			Variant: variant, DE: gompresso.DEStrict, BlockSize: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []gompresso.ReaderOptions{
			{Workers: 2},
			{Workers: 4},
			{Workers: 4, Readahead: 1}, // raised to Workers
			{Workers: 4, Readahead: 16},
			{Workers: 64}, // clamped to the block count
		} {
			r, err := gompresso.NewReaderWith(bytes.NewReader(comp), opt)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			buf := make([]byte, 7777)
			for {
				n, err := r.Read(buf)
				got.Write(buf[:n])
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("%v/%+v: read: %v", variant, opt, err)
				}
			}
			if !bytes.Equal(got.Bytes(), src) {
				t.Fatalf("%v/%+v: Read stream mismatch", variant, opt)
			}
			r.Close()

			r2, err := gompresso.NewReaderWith(bytes.NewReader(comp), opt)
			if err != nil {
				t.Fatal(err)
			}
			var got2 bytes.Buffer
			if _, err := io.Copy(&got2, r2); err != nil {
				t.Fatalf("%v/%+v: copy: %v", variant, opt, err)
			}
			if !bytes.Equal(got2.Bytes(), src) {
				t.Fatalf("%v/%+v: WriteTo stream mismatch", variant, opt)
			}
			r2.Close()
		}
	}
}

// A zero-length Read must return immediately without decoding blocks or
// touching the pipeline.
func TestStreamingReaderZeroLengthRead(t *testing.T) {
	src := datagen.WikiXML(256<<10, 17)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		r, err := gompresso.NewReaderWith(bytes.NewReader(comp), gompresso.ReaderOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if n, err := r.Read(nil); n != 0 || err != nil {
				t.Fatalf("workers=%d: Read(nil) = %d, %v", workers, n, err)
			}
		}
		out, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(out, src) {
			t.Fatalf("workers=%d: stream after zero-length reads broken: %v", workers, err)
		}
		// Zero-length reads at EOF are still 0, nil per io.Reader.
		if n, err := r.Read(nil); n != 0 || err != nil {
			t.Fatalf("workers=%d: Read(nil) at EOF = %d, %v", workers, n, err)
		}
		r.Close()
	}
}

// corruptBlock returns comp with block k's sequence count decremented
// without changing its sub-block count, which makes exactly that block's
// decode fail. ok is false when the layout does not allow the mutation.
func corruptBlock(t *testing.T, comp []byte, k int) ([]byte, bool) {
	t.Helper()
	h, err := gompresso.Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := format.BuildIndex(comp, h)
	if err != nil {
		t.Fatal(err)
	}
	off := int(idx.Offsets[k]) + 4 // RawLen, then NumSeqs
	numSeqs := int(uint32(comp[off]) | uint32(comp[off+1])<<8 |
		uint32(comp[off+2])<<16 | uint32(comp[off+3])<<24)
	spb := int(h.SeqsPerSub)
	mutated := numSeqs - 1
	if mutated <= 0 || (h.Variant == gompresso.VariantBit &&
		(mutated+spb-1)/spb != (numSeqs+spb-1)/spb) {
		return nil, false
	}
	mut := append([]byte(nil), comp...)
	mut[off] = byte(mutated)
	mut[off+1] = byte(mutated >> 8)
	mut[off+2] = byte(mutated >> 16)
	mut[off+3] = byte(mutated >> 24)
	return mut, true
}

// A corrupt block in the middle of the stream must surface its error at
// exactly the block's byte offset: every byte of the preceding blocks is
// served (in order) and nothing from the corrupt block onward.
func TestStreamingReaderMidStreamError(t *testing.T) {
	const blockSize = 64 << 10
	src := datagen.WikiXML(512<<10, 19)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		comp, _, err := gompresso.Compress(src, gompresso.Options{Variant: variant, BlockSize: blockSize})
		if err != nil {
			t.Fatal(err)
		}
		const k = 3
		mut, ok := corruptBlock(t, comp, k)
		if !ok {
			t.Skipf("%v: block %d layout does not allow the mutation", variant, k)
		}
		for _, workers := range []int{1, 4} {
			r, err := gompresso.NewReaderWith(bytes.NewReader(mut), gompresso.ReaderOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(r)
			if err == nil {
				t.Fatalf("%v workers=%d: corrupt stream decoded without error", variant, workers)
			}
			if len(got) != k*blockSize {
				t.Fatalf("%v workers=%d: error surfaced at byte %d, want %d",
					variant, workers, len(got), k*blockSize)
			}
			if !bytes.Equal(got, src[:k*blockSize]) {
				t.Fatalf("%v workers=%d: bytes before the corrupt block differ", variant, workers)
			}
			r.Close()
		}
	}
}

// Closing a pipelined reader mid-stream must stop its fetch goroutine and
// release every in-flight decode — no goroutine may outlive Close (the
// shared pool's persistent workers are part of the warmed baseline).
func TestStreamingReaderCloseMidStreamNoLeak(t *testing.T) {
	src := datagen.WikiXML(1<<20, 23)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := gompresso.NewReaderWith(bytes.NewReader(comp), gompresso.ReaderOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, warm); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	runtime.GC()
	base := runtime.NumGoroutine()

	for i := 0; i < 10; i++ {
		r, err := gompresso.NewReaderWith(bytes.NewReader(comp), gompresso.ReaderOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Consume one byte so the pipeline is demonstrably running, then
		// abandon the stream.
		one := make([]byte, 1)
		if _, err := io.ReadFull(r, one); err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by closed readers: %d running, baseline %d", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Seek must land anywhere in the decompressed stream — with or without an
// index trailer, synchronous or pipelined — and reads after a seek must be
// byte-identical to Decompress output.
func TestStreamingReaderSeek(t *testing.T) {
	const blockSize = 64 << 10
	src := datagen.WikiXML(1<<20, 29)
	for _, withIndex := range []bool{false, true} {
		comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: blockSize, Index: withIndex})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			r, err := gompresso.NewReaderWith(bytes.NewReader(comp), gompresso.ReaderOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			// Consume a prefix first so Seek starts from a mid-stream state.
			prefix := make([]byte, 1234)
			if _, err := io.ReadFull(r, prefix); err != nil || !bytes.Equal(prefix, src[:1234]) {
				t.Fatalf("index=%v workers=%d: prefix read: %v", withIndex, workers, err)
			}
			targets := []int64{
				0, 1, 500, blockSize - 1, blockSize, blockSize + 1,
				3*blockSize + 12345, int64(len(src)) - 1, int64(len(src)),
			}
			for _, target := range targets {
				got, err := r.Seek(target, io.SeekStart)
				if err != nil || got != target {
					t.Fatalf("index=%v workers=%d: Seek(%d) = %d, %v", withIndex, workers, target, got, err)
				}
				want := src[target:]
				if len(want) > 4096 {
					want = want[:4096]
				}
				buf := make([]byte, len(want))
				if len(want) == 0 {
					if n, err := r.Read(make([]byte, 1)); n != 0 || err != io.EOF {
						t.Fatalf("index=%v workers=%d: read at EOF = %d, %v", withIndex, workers, n, err)
					}
					continue
				}
				if _, err := io.ReadFull(r, buf); err != nil {
					t.Fatalf("index=%v workers=%d: read after Seek(%d): %v", withIndex, workers, target, err)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("index=%v workers=%d: bytes after Seek(%d) differ", withIndex, workers, target)
				}
			}
			// Relative whences agree with the decompressed stream position.
			if _, err := r.Seek(100, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			buf50 := make([]byte, 50)
			if _, err := io.ReadFull(r, buf50); err != nil {
				t.Fatal(err)
			}
			if got, err := r.Seek(10, io.SeekCurrent); err != nil || got != 160 {
				t.Fatalf("SeekCurrent: %d, %v", got, err)
			}
			if _, err := io.ReadFull(r, buf50); err != nil || !bytes.Equal(buf50, src[160:210]) {
				t.Fatalf("read after SeekCurrent mismatch (%v)", err)
			}
			if got, err := r.Seek(-10, io.SeekEnd); err != nil || got != int64(len(src))-10 {
				t.Fatalf("SeekEnd: %d, %v", got, err)
			}
			tail, err := io.ReadAll(r)
			if err != nil || !bytes.Equal(tail, src[len(src)-10:]) {
				t.Fatalf("read after SeekEnd mismatch (%v)", err)
			}
			// Rewinding after EOF replays the whole stream.
			if _, err := r.Seek(0, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			all, err := io.ReadAll(r)
			if err != nil || !bytes.Equal(all, src) {
				t.Fatalf("index=%v workers=%d: full replay after Seek(0) broken (%v)", withIndex, workers, err)
			}
			if _, err := r.Seek(-1, io.SeekStart); err == nil {
				t.Fatal("negative seek accepted")
			}
			r.Close()
			if _, err := r.Seek(0, io.SeekStart); err == nil {
				t.Fatal("Seek on a closed reader accepted")
			}
		}
	}

	// A non-seekable source rejects Seek but still streams.
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	r, err := gompresso.NewReader(io.MultiReader(bytes.NewReader(comp)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Seek(0, io.SeekStart); err == nil {
		t.Fatal("Seek accepted on a non-seekable source")
	}
	out, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("non-seekable stream broken: %v", err)
	}
	r.Close()
}
