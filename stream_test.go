package gompresso_test

import (
	"bytes"
	"io"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

// The streaming Reader must produce byte-identical output to Decompress for
// every variant, via both small Read calls and the WriteTo fast path.
func TestStreamingReader(t *testing.T) {
	src := datagen.WikiXML(1<<20, 3)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		comp, _, err := gompresso.Compress(src, gompresso.Options{
			Variant: variant, DE: gompresso.DEStrict, BlockSize: 128 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Odd-sized Read calls exercise the intra-block offset logic.
		r, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		if h := r.Header(); h.Variant != variant || h.RawSize != uint64(len(src)) {
			t.Fatalf("%v: header %+v", variant, h)
		}
		var got bytes.Buffer
		buf := make([]byte, 7777)
		for {
			n, err := r.Read(buf)
			got.Write(buf[:n])
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%v: read: %v", variant, err)
			}
		}
		if !bytes.Equal(got.Bytes(), src) {
			t.Fatalf("%v: Read stream mismatch", variant)
		}
		r.Close()

		// io.Copy takes the WriteTo path.
		r2, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		var got2 bytes.Buffer
		n, err := io.Copy(&got2, r2)
		if err != nil {
			t.Fatalf("%v: copy: %v", variant, err)
		}
		if n != int64(len(src)) || !bytes.Equal(got2.Bytes(), src) {
			t.Fatalf("%v: WriteTo stream mismatch (%d bytes)", variant, n)
		}
		r2.Close()
	}
}

func TestStreamingReaderTinyInputs(t *testing.T) {
	for _, size := range []int{0, 1, 3, 100} {
		src := datagen.WikiXML(1<<12, 9)[:size]
		comp, _, err := gompresso.Compress(src, gompresso.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("size %d: mismatch", size)
		}
	}
}

// A block that fails to decode must never be served. Shrinking the first
// block's declared sequence count (without changing its sub-block count)
// makes its decode fail deterministically — the stream then describes fewer
// bytes than the block header — and the Reader must return the error with
// zero bytes served, not a buffer of undecoded garbage.
func TestStreamingReaderFailedBlockNotServed(t *testing.T) {
	src := datagen.WikiXML(256<<10, 5)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	h, err := gompresso.Info(comp)
	if err != nil {
		t.Fatal(err)
	}
	const numSeqsOff = 35 + 4 // file header + block RawLen field
	numSeqs := int(uint32(comp[numSeqsOff]) | uint32(comp[numSeqsOff+1])<<8 |
		uint32(comp[numSeqsOff+2])<<16 | uint32(comp[numSeqsOff+3])<<24)
	spb := int(h.SeqsPerSub)
	mutated := numSeqs - 1
	if mutated <= 0 || (mutated+spb-1)/spb != (numSeqs+spb-1)/spb {
		t.Skipf("block layout does not allow a same-sub-count mutation (%d seqs)", numSeqs)
	}
	mut := append([]byte(nil), comp...)
	mut[numSeqsOff] = byte(mutated)
	mut[numSeqsOff+1] = byte(mutated >> 8)
	mut[numSeqsOff+2] = byte(mutated >> 16)
	mut[numSeqsOff+3] = byte(mutated >> 24)

	r, err := gompresso.NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err == nil {
		t.Fatal("mutated stream decoded without error")
	}
	if len(got) != 0 {
		t.Fatalf("reader served %d bytes from a block whose decode failed", len(got))
	}
}

func TestStreamingReaderTruncated(t *testing.T) {
	src := datagen.WikiXML(256<<10, 4)
	comp, _, err := gompresso.Compress(src, gompresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{10, 40, len(comp) / 2, len(comp) - 1} {
		r, err := gompresso.NewReader(bytes.NewReader(comp[:cut]))
		if err != nil {
			continue // truncated header rejected at construction: fine
		}
		if _, err := io.ReadAll(r); err == nil {
			t.Fatalf("cut %d: truncated stream decoded without error", cut)
		}
	}
}
