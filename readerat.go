package gompresso

import (
	"context"
	"fmt"
	"io"
	"sync"

	"gompresso/internal/format"
	"gompresso/internal/parallel"
)

// ReaderAt serves positioned reads of a container's decompressed contents —
// the shape an object-store range server or a columnar scan needs. It is
// safe for concurrent use: every ReadAt call is independent, decoding only
// the blocks that overlap the requested range (in parallel, on the shared
// worker pool, when the range spans several) with buffers and decode
// scratch drawn from pools.
//
// The block index comes from the container's optional index trailer
// (Options.Index) when present; otherwise construction scans the block
// section once. For a sequential view of a sub-range, wrap a ReaderAt in an
// io.SectionReader.
type ReaderAt struct {
	ra      io.ReaderAt
	hdr     format.FileHeader
	idx     *format.Index
	workers int // per-call decode concurrency; 0 selects GOMAXPROCS
	ctx     context.Context
}

// NewReaderAt opens a Gompresso container stored in the first size bytes
// of ra for random access. Codec.NewReaderAt is the same, bound to a
// codec's worker budget and context.
func NewReaderAt(ra io.ReaderAt, size int64) (*ReaderAt, error) {
	return newReaderAt(ra, size, 0, context.Background(), FormatAuto)
}

func newReaderAt(ra io.ReaderAt, size int64, workers int, ctx context.Context, form Format) (*ReaderAt, error) {
	head := make([]byte, format.HeaderSize)
	n, err := ra.ReadAt(head, 0)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("gompresso: reading header: %w", err)
	}
	head = head[:n]
	// Classify before parsing, so foreign and unrecognized inputs get the
	// same typed errors here as from Decompress/NewReader: random access
	// needs the native container's block structure. A format pinned to
	// FormatGompresso skips the sniff (mismatched input surfaces as a
	// native parse error, as in NewReader).
	if form == FormatAuto {
		if form = sniffFormat(head); form == FormatAuto {
			return nil, unknownFormat(head)
		}
	}
	if form != FormatGompresso {
		return nil, errForeignReaderAt
	}
	hdr, err := format.ParseHeader(head)
	if err != nil {
		return nil, err
	}
	idx, err := format.ReadIndexAt(ra, size, hdr)
	if err != nil {
		// No trailer: one streaming scan of the block section.
		_, idx, err = format.ScanIndex(io.NewSectionReader(ra, 0, size))
		if err != nil {
			return nil, err
		}
	}
	return &ReaderAt{ra: ra, hdr: hdr, idx: idx, workers: workers, ctx: ctx}, nil
}

// Header returns the container's file header.
func (r *ReaderAt) Header() FileHeader { return r.hdr }

// Size returns the decompressed size of the container.
func (r *ReaderAt) Size() int64 { return int64(r.hdr.RawSize) }

// blockSpan returns the raw block size used for block arithmetic.
func (r *ReaderAt) blockSpan() int64 {
	if bs := int64(r.hdr.BlockSize); bs > 0 {
		return bs
	}
	return int64(r.hdr.RawSize) // degenerate single-block container
}

// ReadAt implements io.ReaderAt over the decompressed stream. A read that
// reaches the end of the stream returns the bytes read and io.EOF, per the
// io.ReaderAt contract.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("gompresso: negative read offset %d", off)
	}
	raw := int64(r.hdr.RawSize)
	if len(p) == 0 {
		if off > raw {
			return 0, io.EOF
		}
		return 0, nil
	}
	if off >= raw {
		return 0, io.EOF
	}
	want := len(p)
	if int64(want) > raw-off {
		want = int(raw - off)
	}
	bs := r.blockSpan()
	b0 := off / bs
	nb := (off+int64(want)-1)/bs - b0 + 1
	errs := make([]error, nb)
	workers := parallel.Workers(int(nb), r.workers)
	scratch := make([]*format.DecodeScratch, workers)
	if r.hdr.Variant == format.VariantBit {
		for i := range scratch {
			scratch[i] = format.GetScratch()
		}
		defer func() {
			for _, sc := range scratch {
				format.PutScratch(sc)
			}
		}()
	}
	parallel.ForShare(int(nb), r.workers, func(share, k int) {
		if err := r.ctx.Err(); err != nil {
			errs[k] = err
			return
		}
		errs[k] = r.readBlock(p[:want], off, b0+int64(k), scratch[share])
	})
	for k, err := range errs {
		if err != nil {
			// Everything before the failing block was decoded in full.
			good := (b0+int64(k))*bs - off
			if good < 0 {
				good = 0
			}
			return int(good), err
		}
	}
	if want < len(p) {
		return want, io.EOF
	}
	return want, nil
}

// blockBufPool recycles whole-block decode buffers for reads that cover a
// block only partially.
var blockBufPool = sync.Pool{New: func() any { return new([]byte) }}

// compBufPool recycles compressed-record buffers.
var compBufPool = sync.Pool{New: func() any { return new([]byte) }}

func pooledBuf(pool *sync.Pool, n int) *[]byte {
	bp := pool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// readBlock decodes block bi into the part of p (the request for
// [off, off+len(p)) of the raw stream) that the block overlaps. Blocks
// fully inside the request decode straight into p; edge blocks decode into
// a pooled buffer first.
func (r *ReaderAt) readBlock(p []byte, off int64, bi int64, sc *format.DecodeScratch) error {
	start, end := r.idx.Offsets[bi], r.idx.Offsets[bi+1]
	cp := pooledBuf(&compBufPool, int(end-start))
	defer compBufPool.Put(cp)
	if _, err := r.ra.ReadAt(*cp, start); err != nil {
		return fmt.Errorf("gompresso: block %d: %w", bi, err)
	}
	var blk format.Block
	if _, err := format.ParseBlock(r.hdr, uint32(bi), *cp, &blk); err != nil {
		return err
	}
	bs := r.blockSpan()
	rawStart := bi * bs
	wantLen := int64(r.hdr.RawSize) - rawStart
	if wantLen > bs {
		wantLen = bs
	}
	if int64(blk.RawLen) != wantLen {
		return fmt.Errorf("%w: block %d: raw length %d, expected %d",
			format.ErrFormat, bi, blk.RawLen, wantLen)
	}
	lo, hi := rawStart, rawStart+int64(blk.RawLen)
	if lo < off {
		lo = off
	}
	if reqHi := off + int64(len(p)); hi > reqHi {
		hi = reqHi
	}
	var dst []byte
	whole := lo == rawStart && hi == rawStart+int64(blk.RawLen)
	if whole {
		dst = p[rawStart-off : rawStart-off+int64(blk.RawLen)]
	} else {
		bp := pooledBuf(&blockBufPool, blk.RawLen)
		defer blockBufPool.Put(bp)
		dst = *bp
	}
	var err error
	if r.hdr.Variant == format.VariantByte {
		err = format.DecodeByteInto(dst, blk.Payload, blk.NumSeqs)
	} else {
		bb := bitBlockView(r.hdr, &blk)
		err = bb.DecodeBitInto(dst, sc)
	}
	if err != nil {
		return fmt.Errorf("gompresso: %w", err)
	}
	if !whole {
		copy(p[lo-off:hi-off], dst[lo-rawStart:hi-rawStart])
	}
	return nil
}
