package gompresso

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"

	"gompresso/internal/blockcache"
	"gompresso/internal/deflate"
	"gompresso/internal/format"
	"gompresso/internal/obs"
	"gompresso/internal/parallel"
)

// ReaderAt serves positioned reads of a container's decompressed contents —
// the shape an object-store range server or a columnar scan needs. It is
// safe for concurrent use: every ReadAt call is independent, decoding only
// the blocks that overlap the requested range (in parallel, on the shared
// worker pool, when the range spans several) with buffers and decode
// scratch drawn from pools.
//
// The block index comes from the container's optional index trailer
// (Options.Index) when present; otherwise construction scans the block
// section once. For a sequential view of a sub-range, wrap a ReaderAt in an
// io.SectionReader.
type ReaderAt struct {
	ra      io.ReaderAt
	hdr     format.FileHeader
	idx     *format.Index
	workers int // per-call decode concurrency; 0 selects GOMAXPROCS
	ctx     context.Context

	// Optional shared decoded-block cache (Codec.WithCache). Blocks are
	// keyed under obj, a process-unique identity for this ReaderAt, so
	// two readers never alias each other's decoded bytes. nil means
	// every read decodes — the original PR-2 path, byte-identical.
	cache *blockcache.Cache
	obj   uint64

	// Foreign mode (Codec.NewReaderAtWithIndex): a gzip/zlib stream made
	// randomly accessible through a seek index. "Blocks" are the index's
	// checkpointed chunks — variable-length, so every block-arithmetic
	// site goes through blockOf/blockStart/rawLen — and decode seeds a
	// deflate engine from the checkpoint window instead of parsing a
	// container record. hdr carries only RawSize; idx is nil.
	fidx *deflate.Index
}

// NewReaderAt opens a Gompresso container stored in the first size bytes
// of ra for random access. Codec.NewReaderAt is the same, bound to a
// codec's worker budget and context.
func NewReaderAt(ra io.ReaderAt, size int64) (*ReaderAt, error) {
	//lint:allow ctxguard NewReaderAt is the context-free API; Codec.NewReaderAt threads a real ctx
	return newReaderAt(context.Background(), ra, size, 0, FormatAuto, nil)
}

func newReaderAt(ctx context.Context, ra io.ReaderAt, size int64, workers int, form Format, cache *blockcache.Cache) (*ReaderAt, error) {
	head := make([]byte, format.HeaderSize)
	n, err := ra.ReadAt(head, 0)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("gompresso: reading header: %w", err)
	}
	head = head[:n]
	// Classify before parsing, so foreign and unrecognized inputs get the
	// same typed errors here as from Decompress/NewReader: random access
	// needs the native container's block structure. A format pinned to
	// FormatGompresso skips the sniff (mismatched input surfaces as a
	// native parse error, as in NewReader).
	if form == FormatAuto {
		if form = sniffFormat(head); form == FormatAuto {
			return nil, unknownFormat(head)
		}
	}
	if form != FormatGompresso {
		return nil, errForeignReaderAt
	}
	hdr, err := format.ParseHeader(head)
	if err != nil {
		return nil, err
	}
	idx, err := format.ReadIndexAt(ra, size, hdr)
	if err != nil {
		// No trailer: one streaming scan of the block section.
		_, idx, err = format.ScanIndex(io.NewSectionReader(ra, 0, size))
		if err != nil {
			return nil, err
		}
	}
	r := &ReaderAt{ra: ra, hdr: hdr, idx: idx, workers: workers, ctx: ctx, cache: cache}
	if cache != nil {
		r.obj = blockcache.NextObject()
	}
	return r, nil
}

// newForeignReaderAt opens a foreign compressed stream (gzip/zlib/raw
// deflate, the first size bytes of ra) for random access through a seek
// index built over exactly those bytes. The index is validated against
// size here; staleness against the live source (mtime) is the caller's
// responsibility, as with any cached resolution.
func newForeignReaderAt(ctx context.Context, ra io.ReaderAt, size int64, idx *deflate.Index, workers int, cache *blockcache.Cache) (*ReaderAt, error) {
	if idx == nil {
		return nil, errors.New("gompresso: nil seek index")
	}
	if err := idx.Validate(size); err != nil {
		return nil, err
	}
	r := &ReaderAt{ra: ra, fidx: idx, workers: workers, ctx: ctx, cache: cache}
	r.hdr.RawSize = uint64(idx.RawSize)
	if cache != nil {
		r.obj = blockcache.NextObject()
	}
	return r, nil
}

// Header returns the container's file header.
func (r *ReaderAt) Header() FileHeader { return r.hdr }

// Forget drops every block this reader has left in the shared cache.
// The serving layer calls it when the backing object is replaced or
// quarantined, so stale or suspect bytes can never be served from
// cache. A no-op without a cache.
func (r *ReaderAt) Forget() {
	if r.cache != nil {
		r.cache.ForgetObject(r.obj)
	}
}

// recoverToErr converts a panic inside a parallel decode share into an
// error on that share. Decode runs on pool workers, where an escaped
// panic kills the process; a corrupt input that trips a decoder bug
// must instead degrade to a failed request.
func recoverToErr(errp *error) {
	if v := recover(); v != nil {
		*errp = fmt.Errorf("gompresso: decode panicked: %v\n%s", v, debug.Stack())
	}
}

// Size returns the decompressed size of the container.
func (r *ReaderAt) Size() int64 { return int64(r.hdr.RawSize) }

// blockSpan returns the raw block size used for block arithmetic.
// Native containers only — foreign chunks are variable-length.
func (r *ReaderAt) blockSpan() int64 {
	if bs := int64(r.hdr.BlockSize); bs > 0 {
		return bs
	}
	return int64(r.hdr.RawSize) // degenerate single-block container
}

// blockOf returns the block (native) or checkpointed chunk (foreign)
// containing decompressed offset off.
func (r *ReaderAt) blockOf(off int64) int64 {
	if r.fidx != nil {
		return int64(r.fidx.ChunkOf(off))
	}
	return off / r.blockSpan()
}

// blockStart returns the decompressed offset block bi begins at.
func (r *ReaderAt) blockStart(bi int64) int64 {
	if r.fidx != nil {
		return r.fidx.ChunkStart(int(bi))
	}
	return bi * r.blockSpan()
}

// rawLen returns the decompressed length block bi must have: BlockSize
// for every block but the last, the remainder for the last; a foreign
// chunk's span comes from the index.
func (r *ReaderAt) rawLen(bi int64) int64 {
	if r.fidx != nil {
		return r.fidx.ChunkLen(int(bi))
	}
	bs := r.blockSpan()
	n := int64(r.hdr.RawSize) - bi*bs
	if n > bs {
		n = bs
	}
	return n
}

// ReadAt implements io.ReaderAt over the decompressed stream. A read that
// reaches the end of the stream returns the bytes read and io.EOF, per the
// io.ReaderAt contract.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return r.readAtCtx(r.ctx, p, off)
}

// readAtCtx is ReadAt under an explicit context — the serving layer's
// entry point, where cancellation is per request rather than per codec.
func (r *ReaderAt) readAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("gompresso: negative read offset %d", off)
	}
	raw := int64(r.hdr.RawSize)
	if len(p) == 0 {
		if off > raw {
			return 0, io.EOF
		}
		return 0, nil
	}
	if off >= raw {
		return 0, io.EOF
	}
	want := len(p)
	if int64(want) > raw-off {
		want = int(raw - off)
	}
	b0 := r.blockOf(off)
	nb := r.blockOf(off+int64(want)-1) - b0 + 1
	errs := make([]error, nb)
	workers := parallel.Workers(int(nb), r.workers)
	scratch := make([]*format.DecodeScratch, workers)
	// Cached mode leaves scratch nil: on the hot path (hits) it is never
	// touched, and a miss pulls scratch from the pool inside the decode
	// closure (cacheBlock) instead of paying per-call round-trips here.
	if r.fidx == nil && r.hdr.Variant == format.VariantBit && r.cache == nil {
		for i := range scratch {
			scratch[i] = format.GetScratch()
		}
		defer func() {
			for _, sc := range scratch {
				format.PutScratch(sc)
			}
		}()
	}
	src := obs.SourceReaderAt(ctx, r.ra)
	parallel.ForShare(int(nb), r.workers, func(share, k int) {
		defer recoverToErr(&errs[k])
		if err := ctx.Err(); err != nil {
			errs[k] = err
			return
		}
		if r.cache != nil {
			errs[k] = r.readBlockCached(ctx, p[:want], off, b0+int64(k))
		} else {
			errs[k] = r.readBlock(ctx, src, p[:want], off, b0+int64(k), scratch[share])
		}
	})
	for k, err := range errs {
		if err != nil {
			// Everything before the failing block was decoded in full.
			good := r.blockStart(b0+int64(k)) - off
			if good < 0 {
				good = 0
			}
			return int(good), err
		}
	}
	if want < len(p) {
		return want, io.EOF
	}
	return want, nil
}

// blockBufPool recycles whole-block decode buffers for reads that cover a
// block only partially.
var blockBufPool = sync.Pool{New: func() any { return new([]byte) }}

// compBufPool recycles compressed-record buffers.
var compBufPool = sync.Pool{New: func() any { return new([]byte) }}

// rangeBufPool recycles WriteRangeTo's uncached staging buffers.
var rangeBufPool = sync.Pool{New: func() any { return new([]byte) }}

func pooledBuf(pool *sync.Pool, n int) *[]byte {
	bp := pool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	//lint:allow poolescape sanctioned lifecycle helper; callers pool.Put when done
	return bp
}

// readBlock decodes block bi into the part of p (the request for
// [off, off+len(p)) of the raw stream) that the block overlaps. Blocks
// fully inside the request decode straight into p; edge blocks decode into
// a pooled buffer first. src is the (possibly trace-wrapped) source.
func (r *ReaderAt) readBlock(ctx context.Context, src io.ReaderAt, p []byte, off int64, bi int64, sc *format.DecodeScratch) error {
	rawStart := r.blockStart(bi)
	rawLen := r.rawLen(bi)
	lo, hi := rawStart, rawStart+rawLen
	if lo < off {
		lo = off
	}
	if reqHi := off + int64(len(p)); hi > reqHi {
		hi = reqHi
	}
	var dst []byte
	whole := lo == rawStart && hi == rawStart+rawLen
	if whole {
		dst = p[rawStart-off : rawStart-off+rawLen]
	} else {
		bp := pooledBuf(&blockBufPool, int(rawLen))
		defer blockBufPool.Put(bp)
		dst = *bp
	}
	_, sp := obs.Start(ctx, obs.StageBlockDecode)
	sp.SetN(bi)
	err := r.decodeBlockInto(src, dst, bi, sc)
	sp.End()
	if err != nil {
		return err
	}
	if !whole {
		copy(p[lo-off:hi-off], dst[lo-rawStart:hi-rawStart])
	}
	return nil
}

// decodeBlockInto fetches, parses, and decodes block bi into dst, whose
// length must be the block's expected raw length (rawLen(bi)). src is
// the backing source — r.ra, or its per-request traced wrapper.
func (r *ReaderAt) decodeBlockInto(src io.ReaderAt, dst []byte, bi int64, sc *format.DecodeScratch) error {
	if r.fidx != nil {
		if err := r.fidx.DecodeChunkInto(dst, src, int(bi)); err != nil {
			return fmt.Errorf("gompresso: chunk %d: %w", bi, err)
		}
		return nil
	}
	start, end := r.idx.Offsets[bi], r.idx.Offsets[bi+1]
	cp := pooledBuf(&compBufPool, int(end-start))
	defer compBufPool.Put(cp)
	if _, err := src.ReadAt(*cp, start); err != nil {
		return fmt.Errorf("gompresso: block %d: %w", bi, err)
	}
	var blk format.Block
	if _, err := format.ParseBlock(r.hdr, uint32(bi), *cp, &blk); err != nil {
		return err
	}
	if blk.RawLen != len(dst) {
		return fmt.Errorf("%w: block %d: raw length %d, expected %d",
			format.ErrFormat, bi, blk.RawLen, len(dst))
	}
	var err error
	if r.hdr.Variant == format.VariantByte {
		err = format.DecodeByteInto(dst, blk.Payload, blk.NumSeqs)
	} else {
		bb := bitBlockView(r.hdr, &blk)
		err = bb.DecodeBitInto(dst, sc)
	}
	if err != nil {
		return fmt.Errorf("gompresso: %w", err)
	}
	return nil
}

// readBlockCached is readBlock through the shared decoded-block cache:
// a hit copies straight out of the resident buffer, a miss decodes the
// whole block once (coalescing with any concurrent request for it,
// scratch drawn from the package pool inside the decode) and leaves it
// resident for the next request.
func (r *ReaderAt) readBlockCached(ctx context.Context, p []byte, off int64, bi int64) error {
	buf, err := r.cacheBlock(ctx, bi, nil)
	if err != nil {
		return err
	}
	defer buf.Release()
	rawStart := r.blockStart(bi)
	data := buf.Bytes()
	lo, hi := rawStart, rawStart+int64(len(data))
	if lo < off {
		lo = off
	}
	if reqHi := off + int64(len(p)); hi > reqHi {
		hi = reqHi
	}
	copy(p[lo-off:hi-off], data[lo-rawStart:hi-rawStart])
	return nil
}

// cacheBlock returns block bi's decoded bytes through the cache, pinned
// for the caller (Release when done). sc may be nil; the decode then
// draws scratch from the package pool (the prefetch path).
//
// Tracing: the whole call is a cache_lookup span (a hit's copy, a
// coalesced wait, or a winning decode); when this request's closure
// actually decodes, that work is a block_decode child span, and the
// block counts as a cache miss for the request — blocks obtained
// without decoding (resident or coalesced) count as hits.
func (r *ReaderAt) cacheBlock(ctx context.Context, bi int64, sc *format.DecodeScratch) (*blockcache.Buf, error) {
	key := blockcache.Key{Object: r.obj, Block: uint32(bi)}
	lctx, lsp := obs.Start(ctx, obs.StageCacheLookup)
	lsp.SetN(bi)
	decoded := false
	buf, err := r.cache.GetOrDecode(ctx, key, int(r.rawLen(bi)), func(dst []byte) error {
		decoded = true
		_, dsp := obs.Start(lctx, obs.StageBlockDecode)
		dsp.SetN(bi)
		defer dsp.End()
		s := sc
		if s == nil && r.hdr.Variant == format.VariantBit {
			s = format.GetScratch()
			defer format.PutScratch(s)
		}
		return r.decodeBlockInto(obs.SourceReaderAt(lctx, r.ra), dst, bi, s)
	})
	lsp.End()
	if err == nil {
		obs.FromContext(ctx).CountCache(!decoded)
	}
	return buf, err
}

// WriteRangeTo streams the decompressed byte range [off, off+length) to
// w under ctx — the serving layer's send path. With a cache attached,
// blocks are pinned window-parallel (up to the worker budget per
// window, misses decoding concurrently on the shared pool) and written
// directly from the shared refcounted buffers — zero copies between
// decode and the socket; without one it decodes ranges through the
// same parallel path as ReadAt. The
// range is clamped to the stream: a range starting at or past the end
// writes nothing and returns io.EOF, mirroring ReadAt.
func (r *ReaderAt) WriteRangeTo(ctx context.Context, w io.Writer, off, length int64) (int64, error) {
	if off < 0 {
		return 0, fmt.Errorf("gompresso: negative read offset %d", off)
	}
	if length < 0 {
		return 0, fmt.Errorf("gompresso: negative range length %d", length)
	}
	if ctx == nil {
		ctx = r.ctx
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	raw := int64(r.hdr.RawSize)
	if off >= raw {
		if length == 0 && off <= raw {
			return 0, nil
		}
		return 0, io.EOF
	}
	clamped := false
	if length > raw-off {
		length, clamped = raw-off, true
	}
	if length == 0 {
		return 0, nil
	}
	var written int64
	var err error
	if r.cache != nil {
		written, err = r.writeRangeCached(ctx, w, off, length)
	} else {
		written, err = r.writeRangeDirect(ctx, w, off, length)
	}
	if err == nil && clamped {
		err = io.EOF
	}
	return written, err
}

// writeRangeCached walks the overlapped blocks in windows of up to
// `workers` blocks: each window pins its blocks through the cache
// concurrently (hits are instant, misses decode in parallel — the same
// concurrency the uncached path gets from ForShare), then writes them
// to w in order. Window memory is bounded by workers × BlockSize, like
// every other parallel path in the package.
func (r *ReaderAt) writeRangeCached(ctx context.Context, w io.Writer, off, length int64) (int64, error) {
	b0, bLast := r.blockOf(off), r.blockOf(off+length-1)
	nb := bLast - b0 + 1
	window := int64(parallel.Workers(int(min(nb, 1<<20)), r.workers))
	bufs := make([]*blockcache.Buf, window)
	errs := make([]error, window)
	var written int64
	for start := b0; start <= bLast; start += window {
		end := start + window - 1
		if end > bLast {
			end = bLast
		}
		// The pool bounds global decode concurrency exactly as it does
		// for the uncached path; a share that finds the block in flight
		// elsewhere blocks only on that decode, which always runs
		// inline on its winning caller, never behind this pool.
		parallel.ForShare(int(end-start+1), r.workers, func(_, k int) {
			defer recoverToErr(&errs[k])
			bufs[k], errs[k] = r.cacheBlock(ctx, start+int64(k), nil)
		})
		for bi := start; bi <= end; bi++ {
			k := bi - start
			buf, err := bufs[k], errs[k]
			bufs[k] = nil
			if err != nil {
				releaseAll(bufs[k+1:])
				return written, err
			}
			data := buf.Bytes()
			rawStart := r.blockStart(bi)
			lo, hi := rawStart, rawStart+int64(len(data))
			if lo < off {
				lo = off
			}
			if reqHi := off + length; hi > reqHi {
				hi = reqHi
			}
			n, werr := w.Write(data[lo-rawStart : hi-rawStart])
			buf.Release()
			written += int64(n)
			if werr != nil {
				releaseAll(bufs[k+1:])
				return written, werr
			}
			// Early-out between blocks only: after the final write the
			// range has been served in full, and a client that closes
			// its connection the moment the last byte arrives must not
			// turn a complete response into a cancellation error.
			if bi < bLast {
				if err := ctx.Err(); err != nil {
					releaseAll(bufs[k+1:])
					return written, err
				}
			}
		}
	}
	return written, nil
}

// spanHint is the typical block length used to size the direct path's
// staging buffer: the exact block size natively, the average chunk span
// (clamped to something sensible) for foreign indexes.
func (r *ReaderAt) spanHint() int64 {
	if r.fidx == nil {
		return r.blockSpan()
	}
	n := int64(r.fidx.NumChunks())
	if n == 0 {
		return 1
	}
	avg := r.fidx.RawSize / n
	if avg < 64<<10 {
		avg = 64 << 10
	}
	if avg > 4<<20 {
		avg = 4 << 20
	}
	return avg
}

// releaseAll unpins any still-held window buffers after an early exit.
func releaseAll(bufs []*blockcache.Buf) {
	for i, b := range bufs {
		if b != nil {
			b.Release()
			bufs[i] = nil
		}
	}
}

// writeRangeDirect serves the range without a cache: chunks of blocks
// decode in parallel through readAtCtx into a pooled buffer, then drain
// to w.
func (r *ReaderAt) writeRangeDirect(ctx context.Context, w io.Writer, off, length int64) (int64, error) {
	chunk := 4 * r.spanHint()
	if chunk > length {
		chunk = length
	}
	bp := pooledBuf(&rangeBufPool, int(chunk))
	defer rangeBufPool.Put(bp)
	var written int64
	for written < length {
		n := chunk
		if n > length-written {
			n = length - written
		}
		m, err := r.readAtCtx(ctx, (*bp)[:n], off+written)
		if m > 0 {
			wn, werr := w.Write((*bp)[:m])
			written += int64(wn)
			if werr != nil {
				return written, werr
			}
		}
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
