package gompresso_test

import (
	"bytes"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

// The facade must expose a complete compress/decompress lifecycle.
func TestFacadeRoundtrip(t *testing.T) {
	src := datagen.WikiXML(2<<20, 5)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		comp, cs, err := gompresso.Compress(src, gompresso.Options{
			Variant: variant, DE: gompresso.DEStrict,
		})
		if err != nil {
			t.Fatal(err)
		}
		if cs.Ratio <= 1 {
			t.Fatalf("%v: no compression (%.2f)", variant, cs.Ratio)
		}
		h, err := gompresso.Info(comp)
		if err != nil {
			t.Fatal(err)
		}
		if h.Variant != variant || h.RawSize != uint64(len(src)) {
			t.Fatalf("%v: header %+v", variant, h)
		}
		for _, tc := range []gompresso.DecompressOptions{
			{Engine: gompresso.EngineHost},
			{Engine: gompresso.EngineDevice, Strategy: gompresso.DE},
			{Engine: gompresso.EngineDevice, Strategy: gompresso.MRR, PCIe: gompresso.PCIeInOut},
		} {
			out, ds, err := gompresso.Decompress(comp, tc)
			if err != nil {
				t.Fatalf("%v engine %v: %v", variant, tc.Engine, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("%v engine %v: mismatch", variant, tc.Engine)
			}
			if tc.Engine == gompresso.EngineDevice && ds.Throughput() <= 0 {
				t.Fatalf("%v: no throughput", variant)
			}
		}
	}
}

func TestFacadeCustomDevice(t *testing.T) {
	spec := gompresso.TeslaK40()
	spec.SMs = 30 // a bigger imaginary device must not be slower
	dev, err := gompresso.NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := datagen.MatrixMarket(2<<20, 5)
	comp, _, err := gompresso.Compress(src, gompresso.Options{
		Variant: gompresso.VariantByte, DE: gompresso.DEStrict,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, big, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
		Engine: gompresso.EngineDevice, Strategy: gompresso.DE, Device: dev, TileTo: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, k40, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
		Engine: gompresso.EngineDevice, Strategy: gompresso.DE, TileTo: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.SimSeconds > k40.SimSeconds*1.01 {
		t.Fatalf("30-SM device slower than 15-SM: %v vs %v", big.SimSeconds, k40.SimSeconds)
	}
}
