package gompresso_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

// Concurrent ReaderAt stress: many goroutines issue overlapping random
// ranges — through ReadAt and WriteRangeTo, cache on and off — and every
// byte must match the one-shot Decompress oracle. CI runs this under
// -race, which is the point: the pooled buffers, shared scratch,
// refcounted cache buffers, and singleflight decodes all collide here.
func TestReaderAtStress(t *testing.T) {
	const blockSize = 32 << 10
	src := datagen.WikiXML(768<<10, 41)
	for _, variant := range []gompresso.Variant{gompresso.VariantBit, gompresso.VariantByte} {
		comp, _, err := gompresso.Compress(src, gompresso.Options{
			Variant: variant, BlockSize: blockSize, Index: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: the whole stream via the one-shot host engine.
		oracle, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{Engine: gompresso.EngineHost})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(oracle, src) {
			t.Fatal("oracle mismatch")
		}
		for _, cacheBytes := range []int64{0, 256 << 10, 64 << 20} {
			// 256 KiB forces constant eviction (the corpus decodes to 3×
			// that); 64 MiB means everything stays resident after first use.
			codec, err := gompresso.New(gompresso.WithCache(cacheBytes))
			if err != nil {
				t.Fatal(err)
			}
			ra, err := codec.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(seed))
					for i := 0; i < 25; i++ {
						off := rnd.Intn(len(src))
						n := 1 + rnd.Intn(3*blockSize)
						if off+n > len(src) {
							n = len(src) - off
						}
						if n == 0 {
							continue
						}
						if i%2 == 0 {
							p := make([]byte, n)
							m, err := ra.ReadAt(p, int64(off))
							if err != nil && err != io.EOF {
								t.Errorf("ReadAt(%d,%d): %v", off, n, err)
								return
							}
							if m != n || !bytes.Equal(p[:m], oracle[off:off+n]) {
								t.Errorf("ReadAt(%d,%d): mismatch", off, n)
								return
							}
						} else {
							var buf bytes.Buffer
							m, err := ra.WriteRangeTo(context.Background(), &buf, int64(off), int64(n))
							if err != nil && err != io.EOF {
								t.Errorf("WriteRangeTo(%d,%d): %v", off, n, err)
								return
							}
							if m != int64(n) || !bytes.Equal(buf.Bytes(), oracle[off:off+n]) {
								t.Errorf("WriteRangeTo(%d,%d): mismatch (%d bytes)", off, n, m)
								return
							}
						}
					}
				}(int64(g)*977 + int64(cacheBytes) + int64(variant))
			}
			wg.Wait()
			if t.Failed() {
				t.Fatalf("variant=%v cache=%d", variant, cacheBytes)
			}
			stats := codec.CacheStats()
			if cacheBytes == 0 && stats.Enabled {
				t.Fatal("cache reported enabled at size 0")
			}
			if cacheBytes > 0 {
				if !stats.Enabled || stats.Hits+stats.Misses == 0 {
					t.Fatalf("cache=%d saw no traffic: %+v", cacheBytes, stats)
				}
				if stats.Bytes > stats.MaxBytes {
					t.Fatalf("cache over budget: %+v", stats)
				}
				if stats.Entries == 0 {
					t.Fatalf("cache=%d retained nothing: %+v", cacheBytes, stats)
				}
				if cacheBytes == 256<<10 && stats.Evictions == 0 {
					t.Fatalf("cache=%d: corpus is 3x the budget but nothing evicted: %+v", cacheBytes, stats)
				}
			}
		}
	}
}

// Two ReaderAts over the same codec share the cache but must not alias
// each other's blocks: same block index, different containers.
func TestReaderAtCacheIsolation(t *testing.T) {
	const blockSize = 16 << 10
	srcA := datagen.WikiXML(64<<10, 1)
	srcB := datagen.WikiXML(64<<10, 2)
	codec, err := gompresso.New(gompresso.WithCache(32 << 20))
	if err != nil {
		t.Fatal(err)
	}
	open := func(src []byte) *gompresso.ReaderAt {
		comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: blockSize, Index: true})
		if err != nil {
			t.Fatal(err)
		}
		ra, err := codec.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
		if err != nil {
			t.Fatal(err)
		}
		return ra
	}
	raA, raB := open(srcA), open(srcB)
	pa, pb := make([]byte, 1000), make([]byte, 1000)
	for i := 0; i < 2; i++ { // second pass hits the cache
		if _, err := raA.ReadAt(pa, 5000); err != nil {
			t.Fatal(err)
		}
		if _, err := raB.ReadAt(pb, 5000); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, srcA[5000:6000]) || !bytes.Equal(pb, srcB[5000:6000]) {
			t.Fatalf("pass %d: cross-object aliasing", i)
		}
	}
	if stats := codec.CacheStats(); stats.Hits == 0 {
		t.Fatalf("second pass did not hit the cache: %+v", stats)
	}
}

// WriteRangeTo must propagate per-request context cancellation.
func TestWriteRangeToCancelled(t *testing.T) {
	src := datagen.WikiXML(256<<10, 3)
	comp, _, err := gompresso.Compress(src, gompresso.Options{BlockSize: 16 << 10, Index: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, cacheBytes := range []int64{0, 8 << 20} {
		codec, err := gompresso.New(gompresso.WithCache(cacheBytes))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := codec.NewReaderAt(bytes.NewReader(comp), int64(len(comp)))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ra.WriteRangeTo(ctx, io.Discard, 0, int64(len(src))); err == nil {
			t.Fatalf("cache=%d: cancelled WriteRangeTo succeeded", cacheBytes)
		}
	}
}
