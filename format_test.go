package gompresso_test

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"errors"
	"io"
	"runtime"
	"testing"

	"gompresso"
	"gompresso/internal/datagen"
)

func gzipBytes(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	w.Write(raw)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Codec.Decompress must sniff and expand foreign formats byte-identically
// to the stdlib reference decoders, at every worker count.
func TestCodecDecompressForeign(t *testing.T) {
	raw := datagen.WikiXML(192<<10, 21)

	var zl bytes.Buffer
	zw := zlib.NewWriter(&zl)
	zw.Write(raw)
	zw.Close()
	var df bytes.Buffer
	fw, _ := flate.NewWriter(&df, 6)
	fw.Write(raw)
	fw.Close()

	cases := []struct {
		name string
		data []byte
		opts []gompresso.Option
	}{
		{"gzip-sniffed", gzipBytes(t, raw), nil},
		{"gzip-pinned", gzipBytes(t, raw), []gompresso.Option{gompresso.WithFormat(gompresso.FormatGzip)}},
		{"zlib-sniffed", zl.Bytes(), nil},
		{"deflate-pinned", df.Bytes(), []gompresso.Option{gompresso.WithFormat(gompresso.FormatDeflate)}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			c, err := gompresso.New(append(tc.opts, gompresso.WithWorkers(workers))...)
			if err != nil {
				t.Fatal(err)
			}
			out, stats, err := c.Decompress(tc.data)
			if err != nil {
				t.Fatalf("%s W=%d: %v", tc.name, workers, err)
			}
			if !bytes.Equal(out, raw) {
				t.Fatalf("%s W=%d: output mismatch (%d bytes)", tc.name, workers, len(out))
			}
			if stats.RawSize != int64(len(raw)) || stats.CompSize != int64(len(tc.data)) {
				t.Fatalf("%s W=%d: stats %+v", tc.name, workers, stats)
			}
		}
	}

	// The native container still round-trips through the same entry point.
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := c.Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := c.Decompress(comp)
	if err != nil || !bytes.Equal(out, raw) {
		t.Fatalf("container via sniffing codec: %v", err)
	}
}

// Unrecognized input must fail with the typed ErrUnknownFormat carrying
// the offending magic bytes — from Codec.Decompress and NewReader alike.
func TestUnknownFormat(t *testing.T) {
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range [][]byte{
		[]byte("PK\x03\x04 this is a zip, not ours"),
		[]byte("x"), // too short for any magic
		{},
	} {
		if _, _, err := c.Decompress(data); !errors.Is(err, gompresso.ErrUnknownFormat) {
			t.Fatalf("Decompress(% x): got %v, want ErrUnknownFormat", data, err)
		}
		if _, err := gompresso.NewReader(bytes.NewReader(data)); !errors.Is(err, gompresso.ErrUnknownFormat) {
			t.Fatalf("NewReader(% x): got %v, want ErrUnknownFormat", data, err)
		}
	}
	var ufe *gompresso.UnknownFormatError
	_, _, err = c.Decompress([]byte("PK\x03\x04..."))
	if !errors.As(err, &ufe) || !bytes.Equal(ufe.Magic, []byte("PK\x03\x04")) {
		t.Fatalf("magic bytes not carried: %v", err)
	}
}

// WithFormat values outside the enum are configuration mistakes, rejected
// at New like every other invalid option; NewReaderAt classifies its
// input like Decompress/NewReader but rejects foreign formats (no block
// index to serve random access from).
func TestFormatValidation(t *testing.T) {
	if _, err := gompresso.New(gompresso.WithFormat(gompresso.Format(7))); !errors.Is(err, gompresso.ErrInvalidOption) {
		t.Fatalf("Format(7): got %v, want ErrInvalidOption", err)
	}
	gz := gzipBytes(t, []byte("random access needs an index"))
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewReaderAt(bytes.NewReader(gz), int64(len(gz))); err == nil || errors.Is(err, gompresso.ErrUnknownFormat) {
		t.Fatalf("NewReaderAt(gzip): got %v, want a foreign-format rejection", err)
	}
	if _, err := c.NewReaderAt(bytes.NewReader([]byte("PK\x03\x04zip")), 7); !errors.Is(err, gompresso.ErrUnknownFormat) {
		t.Fatalf("NewReaderAt(zip): got %v, want ErrUnknownFormat", err)
	}
	// The top-level constructor classifies identically.
	if _, err := gompresso.NewReaderAt(bytes.NewReader(gz), int64(len(gz))); err == nil || errors.Is(err, gompresso.ErrUnknownFormat) {
		t.Fatalf("top-level NewReaderAt(gzip): got %v, want a foreign-format rejection", err)
	}
	if _, err := gompresso.NewReaderAt(bytes.NewReader([]byte("PK\x03\x04zip")), 7); !errors.Is(err, gompresso.ErrUnknownFormat) {
		t.Fatalf("top-level NewReaderAt(zip): got %v, want ErrUnknownFormat", err)
	}
}

// Foreign decode failures must be classifiable through the re-exported
// sentinels and carry their input offset via the exported DeflateError.
func TestForeignErrorsExported(t *testing.T) {
	c, err := gompresso.New()
	if err != nil {
		t.Fatal(err)
	}
	gz := gzipBytes(t, datagen.WikiXML(32<<10, 17))

	_, _, err = c.Decompress(gz[:len(gz)/2])
	if !errors.Is(err, gompresso.ErrTruncated) {
		t.Fatalf("truncated: got %v, want ErrTruncated", err)
	}
	var de *gompresso.DeflateError
	if !errors.As(err, &de) || de.Off != int64(len(gz)/2) {
		t.Fatalf("offset not carried: %v", err)
	}

	mut := append([]byte(nil), gz...)
	mut[len(mut)-6] ^= 0xff // CRC field
	if _, _, err := c.Decompress(mut); !errors.Is(err, gompresso.ErrChecksum) {
		t.Fatalf("checksum: got %v, want ErrChecksum", err)
	}
	mut = append([]byte(nil), gz...)
	mut[0] ^= 0xff
	c2, _ := gompresso.New(gompresso.WithFormat(gompresso.FormatGzip))
	if _, _, err := c2.Decompress(mut); !errors.Is(err, gompresso.ErrHeader) {
		t.Fatalf("header: got %v, want ErrHeader", err)
	}
}

// gompresso.NewReader serves .gz streams — seekable or not — with output
// identical to stdlib gzip; Seek on a foreign stream fails cleanly.
func TestReaderForeign(t *testing.T) {
	raw := datagen.WikiXML(256<<10, 33)
	gz := gzipBytes(t, raw)

	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		r, err := gompresso.NewReaderWith(bytes.NewReader(gz), gompresso.ReaderOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("W=%d: %v", workers, err)
		}
		if !bytes.Equal(out, raw) {
			t.Fatalf("W=%d: output mismatch", workers)
		}
		if _, err := r.Seek(0, io.SeekStart); err == nil {
			t.Fatal("Seek on a foreign stream must fail")
		}
		r.Close()
	}

	// Non-seekable source: the sniffed bytes must be spliced back.
	pr := io.NopCloser(bytes.NewReader(gz))
	r, err := gompresso.NewReader(struct{ io.Reader }{pr})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got bytes.Buffer
	if _, err := io.Copy(&got, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), raw) {
		t.Fatal("non-seekable foreign stream mismatch")
	}
}

// A native container read through a non-seekable source must still work
// after the sniffing read consumed its magic.
func TestReaderContainerNonSeekable(t *testing.T) {
	raw := datagen.WikiXML(64<<10, 41)
	comp, _, err := gompresso.Compress(raw, gompresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := gompresso.NewReader(struct{ io.Reader }{bytes.NewReader(comp)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(out, raw) {
		t.Fatalf("non-seekable container: %v", err)
	}
}
