package gompresso

import (
	"fmt"
	"io"

	"gompresso/internal/format"
)

// Reader streams the decompressed contents of a Gompresso container from an
// io.Reader, one block at a time, through the host engine's fused fast path.
// It never buffers more than one compressed and one decompressed block, and
// after warm-up its read loop is allocation-free (block buffers and decoder
// tables are reused across blocks), which is what a serving path wants —
// Decompress, by contrast, needs the whole container and output in memory.
//
// Reader implements io.Reader and io.WriterTo; io.Copy uses WriteTo
// automatically, decompressing block by block with no intermediate copy.
type Reader struct {
	br  *format.BlockReader
	blk format.Block
	sc  *format.DecodeScratch

	buf []byte // decompressed current block
	off int    // bytes of buf already returned
	err error  // sticky; io.EOF after the last block
}

// NewReader reads the container header from r and returns a streaming
// decompressor for its blocks.
func NewReader(r io.Reader) (*Reader, error) {
	br, err := format.NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	return &Reader{br: br, sc: format.GetScratch()}, nil
}

// Header returns the container's file header.
func (r *Reader) Header() FileHeader { return r.br.Header() }

// advance decodes the next block into r.buf. It sets r.err on failure or at
// end of stream.
func (r *Reader) advance() {
	if err := r.br.Next(&r.blk); err != nil {
		r.err = err
		return
	}
	if cap(r.buf) < r.blk.RawLen {
		r.buf = make([]byte, r.blk.RawLen)
	}
	r.buf = r.buf[:r.blk.RawLen]
	r.off = 0
	hdr := r.br.Header()
	if hdr.Variant == format.VariantByte {
		r.err = format.DecodeByteInto(r.buf, r.blk.Payload, r.blk.NumSeqs)
	} else {
		bb := format.BitBlock{
			LitLenLengths: r.blk.LitLenLengths,
			OffLengths:    r.blk.OffLengths,
			SubBits:       r.blk.SubBits,
			SubLits:       r.blk.SubLits,
			Payload:       r.blk.Payload,
			NumSeqs:       r.blk.NumSeqs,
			SeqsPerSub:    int(hdr.SeqsPerSub),
		}
		r.err = bb.DecodeBitInto(r.buf, r.sc)
	}
	if r.err != nil {
		r.err = fmt.Errorf("gompresso: %w", r.err)
		// Never serve a block that failed to decode: empty the window so
		// Read/WriteTo report the error instead of undecoded bytes.
		r.buf = r.buf[:0]
	}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for r.off == len(r.buf) {
		if r.err != nil {
			return 0, r.err
		}
		r.advance()
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

// WriteTo implements io.WriterTo, streaming whole decompressed blocks to w.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for {
		if r.off < len(r.buf) {
			n, err := w.Write(r.buf[r.off:])
			r.off += n
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		if r.err != nil {
			if r.err == io.EOF {
				return total, nil
			}
			return total, r.err
		}
		r.advance()
	}
}

// Close releases the Reader's pooled decode scratch. It does not close the
// underlying reader. Optional: a Reader that is not closed simply lets the
// scratch be garbage collected.
func (r *Reader) Close() error {
	if r.sc != nil {
		format.PutScratch(r.sc)
		r.sc = nil
	}
	if r.err == nil {
		r.err = fmt.Errorf("gompresso: reader closed")
	}
	return nil
}
