package gompresso

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"gompresso/internal/core"
	"gompresso/internal/deflate"
	"gompresso/internal/format"
	"gompresso/internal/obs"
	"gompresso/internal/parallel"
	"time"
)

// Reader streams the decompressed contents of a Gompresso container from an
// io.Reader through the host engine's fused fast path. Because every block
// is independently decompressible, the Reader runs a three-stage pipeline: a
// fetch stage reads compressed blocks ahead of the consumer, a decode stage
// fans them out to the shared worker pool (each worker slot owning a pooled
// DecodeScratch), and an in-order delivery stage hands finished blocks to
// Read/WriteTo in stream order. Readahead is bounded, so a stalled consumer
// back-pressures the pipeline and memory stays at
// O((Workers+Readahead) × BlockSize).
//
// With one worker (or a single-block container) the Reader degrades to the
// PR-1 synchronous loop: one block buffered, allocation-free steady state,
// no extra goroutines.
//
// Reader implements io.Reader and io.WriterTo; io.Copy uses WriteTo
// automatically. When the underlying reader is an io.Seeker, Reader also
// implements io.Seeker over the *decompressed* stream, using a block index
// read from the container's optional index trailer (Options.Index) or
// reconstructed by a one-time scan. A Reader is not safe for concurrent
// use; for concurrent random access see ReaderAt.
type Reader struct {
	src  io.Reader
	base int64 // container start offset within src; -1 if src cannot seek
	hdr  format.FileHeader
	opt  ReaderOptions
	ctx  context.Context
	idx  *format.Index

	// Synchronous mode (one worker):
	br  *format.BlockReader
	blk format.Block
	sc  *format.DecodeScratch

	// Pipelined mode:
	pl *pipe

	// Foreign-format mode (gzip/zlib/raw deflate): all reads delegate to
	// the two-pass parallel deflate pipeline; Seek is unsupported and
	// Header reports a synthetic header (32 KiB window, sizes unknown).
	fr *deflate.Reader

	buf    []byte // decompressed current block
	off    int    // bytes of buf already returned
	pos    int64  // logical stream offset of the next byte to serve
	skip   int    // bytes to discard from the next delivered block (post-Seek)
	err    error  // sticky; io.EOF after the last block
	closed bool
}

// ReaderOptions tunes the streaming pipeline.
type ReaderOptions struct {
	// Workers is the number of blocks decoded concurrently. 0 selects
	// GOMAXPROCS; 1 selects the synchronous single-goroutine path; negative
	// values are rejected with ErrInvalidOption. Values above the shared
	// pool's size (GOMAXPROCS) keep their readahead buffering but gain no
	// additional decode concurrency.
	Workers int
	// Readahead is the maximum number of decoded blocks buffered ahead of
	// the consumer (the pipeline's back-pressure bound). 0 selects
	// 2×Workers; values below Workers are raised to Workers; negative
	// values are rejected with ErrInvalidOption.
	Readahead int
}

// NewReader returns a streaming decompressor for r with default options.
// The input format is sniffed from the magic bytes: Gompresso containers
// stream block-parallel as before, and gzip/zlib streams decode through
// the parallel two-pass deflate pipeline (buffering the compressed input
// in memory; Seek unsupported). Unrecognized input fails with an error
// wrapping ErrUnknownFormat.
func NewReader(r io.Reader) (*Reader, error) { return NewReaderWith(r, ReaderOptions{}) }

// NewReaderWith is NewReader with explicit pipeline options.
func NewReaderWith(r io.Reader, opt ReaderOptions) (*Reader, error) {
	//lint:allow ctxguard NewReaderWith is the context-free API; Codec.NewReader threads a real ctx
	return newReader(context.Background(), r, opt, FormatAuto)
}

func newReader(ctx context.Context, r io.Reader, opt ReaderOptions, form Format) (*Reader, error) {
	pl, err := core.Pipeline{Workers: opt.Workers, Readahead: opt.Readahead}.Normalize()
	if err != nil {
		return nil, err
	}
	opt.Workers, opt.Readahead = pl.Workers, pl.Readahead
	base := int64(-1)
	if s, ok := r.(io.Seeker); ok {
		if p, err := s.Seek(0, io.SeekCurrent); err == nil {
			base = p
		}
	}
	// Sniff the magic bytes before trusting any parser with the stream:
	// Gompresso containers take the native block pipeline below, foreign
	// formats take the two-pass deflate pipeline, and unrecognized input
	// fails with a typed ErrUnknownFormat instead of a parse error.
	head := make([]byte, 4)
	n, rerr := io.ReadFull(r, head)
	head = head[:n]
	if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
		return nil, rerr
	}
	if form == FormatAuto {
		if form = sniffFormat(head); form == FormatAuto {
			return nil, unknownFormat(head)
		}
	}
	if form != FormatGompresso {
		// Buffer the compressed stream once, seeded with the sniffed bytes
		// (append(head, ...) would copy the whole input a second time).
		var buf bytes.Buffer
		buf.Write(head)
		if _, err := buf.ReadFrom(r); err != nil {
			return nil, err
		}
		data := buf.Bytes()
		fr, err := deflate.NewReaderBytes(ctx, data, foreignForm(form), deflate.Options{
			Workers: opt.Workers, Readahead: opt.Readahead,
		})
		if err != nil {
			return nil, err
		}
		return &Reader{src: r, base: -1, opt: opt, ctx: ctx, fr: fr,
			hdr: format.FileHeader{Window: 32768}}, nil
	}
	// Native container: rewind seekable sources so the block reader owns
	// the stream from the start (preserving Seek); splice the sniffed
	// bytes back in front of pipes.
	src := r
	if s, ok := r.(io.Seeker); ok && base >= 0 {
		if _, err := s.Seek(base, io.SeekStart); err != nil {
			return nil, err
		}
	} else {
		src = io.MultiReader(bytes.NewReader(head), r)
		base = -1
	}
	br, err := format.NewBlockReader(src)
	if err != nil {
		return nil, err
	}
	rd := &Reader{src: src, base: base, hdr: br.Header(), opt: opt, ctx: ctx}
	rd.start(br, 0)
	return rd, nil
}

// Header returns the container's file header.
func (r *Reader) Header() FileHeader { return r.hdr }

// SeekIndex is a seek index over a foreign (gzip/zlib) stream: block-
// boundary checkpoints — compressed bit offset, decompressed offset,
// 32 KiB window — captured during a full decode, enough to re-enter the
// stream at any checkpoint. It is what Codec.NewReaderAtWithIndex turns
// into random access, and what the sidecar tooling persists.
type SeekIndex = deflate.Index

// CollectForeignIndex arranges for this Reader to capture a SeekIndex as
// a side effect of fully decoding a foreign stream: checkpoints every
// `every` decompressed bytes (0 selects the default ~1 MiB spacing). The
// serving layer calls it before its first counting decode of a `.gz`
// object, so the index costs no extra pass. It reports false — and
// captures nothing — on native containers (which carry their own block
// index) or once reading has begun.
func (r *Reader) CollectForeignIndex(every int64) bool {
	return r.fr != nil && r.fr.CollectIndex(every) == nil
}

// ForeignIndex returns the index captured by CollectForeignIndex, or nil
// before the stream has fully decoded (the index is only complete at
// EOF).
func (r *Reader) ForeignIndex() *SeekIndex {
	if r.fr == nil {
		return nil
	}
	idx, err := r.fr.Index()
	if err != nil {
		return nil
	}
	return idx
}

// workersFor returns the decode concurrency for a stream starting at block
// first: the reader's normalized worker budget (newReader ran
// core.Pipeline.Normalize, the shared defaulting), clamped to the blocks
// that remain. Requests above the shared pool's size keep their pipeline
// shape (buffering, readahead) but gain no extra concurrency — the ordered
// queue clamps execution to the pool.
func (r *Reader) workersFor(first uint32) int {
	w := r.opt.Workers
	if rem := int(r.hdr.NumBlocks) - int(first); w > rem {
		w = rem
	}
	if w < 1 {
		w = 1
	}
	return w
}

// start begins decoding blocks from br (positioned at block first),
// choosing the synchronous loop or the pipeline by worker count.
func (r *Reader) start(br *format.BlockReader, first uint32) {
	w := r.workersFor(first)
	if w <= 1 {
		r.br = br
		if r.sc == nil && r.hdr.Variant == format.VariantBit {
			r.sc = format.GetScratch()
		}
		return
	}
	r.pl = newPipe(r.ctx, r.hdr, w, r.opt.Readahead)
	go r.pl.fetch(br)
}

// advance makes the next decompressed block current. It sets r.err on
// failure or at end of stream.
func (r *Reader) advance() {
	if r.pl != nil {
		if r.buf != nil {
			r.pl.bufs <- r.buf // capacity covers every buffer; never blocks
			r.buf = nil
		}
		r.off = 0
		res, ok := r.pl.ord.Next()
		if !ok {
			r.err = errClosed
			return
		}
		if res.err != nil {
			if res.buf != nil {
				r.pl.bufs <- res.buf
			}
			r.err = res.err
			return
		}
		r.buf = res.buf
	} else {
		r.advanceSync()
	}
	if r.err == nil && r.skip > 0 {
		n := r.skip
		if n > len(r.buf) {
			n = len(r.buf)
		}
		r.off, r.skip = n, r.skip-n
	}
}

// advanceSync is the one-worker path: fetch and decode inline, reusing one
// block and one output buffer.
func (r *Reader) advanceSync() {
	if err := r.ctx.Err(); err != nil {
		r.err = err
		return
	}
	if err := r.br.Next(&r.blk); err != nil {
		r.err = err
		return
	}
	if cap(r.buf) < r.blk.RawLen {
		r.buf = make([]byte, r.blk.RawLen)
	}
	r.buf = r.buf[:r.blk.RawLen]
	r.off = 0
	// Block decodes accrue cumulatively (one span per block would swamp
	// the trace table on long streams); the clock is read only when a
	// trace rode in on the context.
	trace := obs.FromContext(r.ctx)
	var t0 time.Time
	if trace != nil {
		t0 = time.Now()
	}
	if r.hdr.Variant == format.VariantByte {
		r.err = format.DecodeByteInto(r.buf, r.blk.Payload, r.blk.NumSeqs)
	} else {
		bb := bitBlockView(r.hdr, &r.blk)
		r.err = bb.DecodeBitInto(r.buf, r.sc)
	}
	if trace != nil {
		trace.Cum(obs.StageBlockDecode, time.Since(t0), 1)
	}
	if r.err != nil {
		r.err = fmt.Errorf("gompresso: %w", r.err)
		// Never serve a block that failed to decode: empty the window so
		// Read/WriteTo report the error instead of undecoded bytes.
		r.buf = r.buf[:0]
	}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.fr != nil {
		n, err := r.fr.Read(p)
		r.pos += int64(n)
		return n, err
	}
	if len(p) == 0 {
		// Zero-length reads must not trigger block decodes or pipeline
		// stalls; io.Reader allows 0, nil for len(p) == 0.
		return 0, nil
	}
	for r.off == len(r.buf) {
		if r.err != nil {
			return 0, r.err
		}
		r.advance()
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	r.pos += int64(n)
	return n, nil
}

// WriteTo implements io.WriterTo, streaming whole decompressed blocks to w.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	if r.fr != nil {
		n, err := r.fr.WriteTo(w)
		r.pos += n
		return n, err
	}
	var total int64
	for {
		if r.off < len(r.buf) {
			n, err := w.Write(r.buf[r.off:])
			r.off += n
			r.pos += int64(n)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		if r.err != nil {
			if r.err == io.EOF {
				return total, nil
			}
			return total, r.err
		}
		r.advance()
	}
}

var (
	errClosed      = errors.New("gompresso: reader closed")
	errNotSeeker   = errors.New("gompresso: underlying reader does not support seeking")
	errForeignSeek = errors.New("gompresso: seeking is not supported for foreign formats")
)

// Seek implements io.Seeker over the decompressed stream. It requires the
// underlying reader to be an io.Seeker. The first Seek loads the block
// index: from the container's index trailer when present (O(NumBlocks)
// bytes read), otherwise by scanning the block section once. Seeking
// clears a sticky decode error or EOF; seeking past the end is allowed and
// subsequent reads return io.EOF.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	if r.closed {
		return 0, errClosed
	}
	if r.fr != nil {
		return 0, errForeignSeek
	}
	rs, ok := r.src.(io.ReadSeeker)
	if !ok || r.base < 0 {
		return 0, errNotSeeker
	}
	var target int64
	switch whence {
	case io.SeekStart:
		target = offset
	case io.SeekCurrent:
		target = r.pos + offset
	case io.SeekEnd:
		target = int64(r.hdr.RawSize) + offset
	default:
		return 0, fmt.Errorf("gompresso: invalid whence %d", whence)
	}
	if target < 0 {
		return 0, fmt.Errorf("gompresso: negative seek position %d", target)
	}
	// Fast path: the target is inside the block currently buffered.
	if r.err == nil && r.skip == 0 && r.buf != nil {
		start := r.pos - int64(r.off)
		if target >= start && target < start+int64(len(r.buf)) {
			r.off = int(target - start)
			r.pos = target
			return target, nil
		}
	}
	// The underlying reader is shared with the fetch goroutine; stop the
	// pipeline before moving the source out from under it.
	r.stopDecoding()
	if err := r.ensureIndex(rs); err != nil {
		r.err = err
		return 0, err
	}
	block := r.hdr.NumBlocks // past the last block: reads yield io.EOF
	var inner int64
	if raw := int64(r.hdr.RawSize); target < raw {
		if bs := int64(r.hdr.BlockSize); bs > 0 {
			block = uint32(target / bs)
			inner = target % bs
		} else {
			block, inner = 0, target
		}
	}
	if err := r.restart(rs, block, inner); err != nil {
		r.err = err
		return 0, err
	}
	r.pos = target
	return target, nil
}

// stopDecoding tears down the decode machinery (pipeline or sync reader)
// and drops the current buffer, leaving the Reader ready for restart.
func (r *Reader) stopDecoding() {
	if r.pl != nil {
		r.pl.shutdown()
		r.pl = nil
	}
	r.br = nil
	// Drop the current buffer unconditionally: it belongs to the old
	// pipeline (whose recycle channels are gone) or to the old sync loop,
	// and carrying it into a fresh pipeline would break the buffer-count
	// invariant behind advance's non-blocking deposit.
	r.buf = nil
	r.off = 0
}

// ensureIndex loads the block index, preferring the container's trailer
// over a full scan.
func (r *Reader) ensureIndex(rs io.ReadSeeker) error {
	if r.idx != nil {
		return nil
	}
	if end, err := rs.Seek(0, io.SeekEnd); err == nil {
		ra := readerAtFunc(func(p []byte, off int64) (int, error) {
			if _, err := rs.Seek(r.base+off, io.SeekStart); err != nil {
				return 0, err
			}
			return io.ReadFull(rs, p)
		})
		if idx, err := format.ReadIndexAt(ra, end-r.base, r.hdr); err == nil {
			r.idx = idx
			return nil
		}
	}
	// No trailer: scan the block section once.
	if _, err := rs.Seek(r.base, io.SeekStart); err != nil {
		return err
	}
	_, idx, err := format.ScanIndex(rs)
	if err != nil {
		return err
	}
	r.idx = idx
	return nil
}

// readerAtFunc adapts a positioned-read closure to io.ReaderAt.
type readerAtFunc func(p []byte, off int64) (int, error)

func (f readerAtFunc) ReadAt(p []byte, off int64) (int, error) { return f(p, off) }

// restart repositions the stream at the given block, discarding inner bytes
// of its decoded output, and spins the decode machinery back up.
func (r *Reader) restart(rs io.ReadSeeker, block uint32, inner int64) error {
	r.stopDecoding()
	r.err = nil
	r.skip = int(inner)
	off := r.idx.Offsets[block]
	if _, err := rs.Seek(r.base+off, io.SeekStart); err != nil {
		return err
	}
	r.start(format.NewBlockReaderAt(r.src, r.hdr, block, off), block)
	return nil
}

// Close shuts down the pipeline, waits for in-flight block decodes, and
// releases all pooled buffers and decode scratch. It does not close the
// underlying reader. Closing an exhausted Reader is optional but
// recommended for pipelined readers, since it is what stops the fetch
// goroutine early when the stream is abandoned mid-way.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.fr != nil {
		r.fr.Close()
		r.fr = nil
	}
	if r.pl != nil {
		r.pl.shutdown()
		r.pl = nil
	}
	if r.sc != nil {
		format.PutScratch(r.sc)
		r.sc = nil
	}
	r.buf = nil
	if r.err == nil {
		r.err = errClosed
	}
	return nil
}

// bitBlockView builds the stack BitBlock view of a parsed block.
func bitBlockView(hdr format.FileHeader, blk *format.Block) format.BitBlock {
	return format.BitBlock{
		LitLenLengths: blk.LitLenLengths,
		OffLengths:    blk.OffLengths,
		SubBits:       blk.SubBits,
		SubLits:       blk.SubLits,
		Payload:       blk.Payload,
		NumSeqs:       blk.NumSeqs,
		SeqsPerSub:    int(hdr.SeqsPerSub),
	}
}

// blockResult is one delivered pipeline block: its decoded bytes, or the
// error (io.EOF at end of stream) that ends the stream at this position.
type blockResult struct {
	buf []byte
	err error
}

// pipe is the pipelined Reader's machinery. Buffer ownership moves through
// channels: compressed blocks cycle fetch→decode→fetch, decoded buffers
// cycle fetch→decode→consumer→fetch, and decode scratch cycles among at
// most `workers` concurrent decode tasks, so the steady state allocates
// nothing and total memory is bounded by the channel capacities.
type pipe struct {
	hdr    format.FileHeader
	ctx    context.Context
	ord    *parallel.Ordered[blockResult]
	bufs   chan []byte                // decoded-output recycle, cap readahead+1
	blocks chan *format.Block         // compressed-block recycle, cap readahead+1
	scs    chan *format.DecodeScratch // per-worker decode scratch (Bit variant)
	nsc    int
	stop   chan struct{}
	once   sync.Once
	done   chan struct{} // fetch goroutine exited
}

func newPipe(ctx context.Context, hdr format.FileHeader, workers, readahead int) *pipe {
	p := &pipe{
		hdr:    hdr,
		ctx:    ctx,
		ord:    parallel.NewOrdered[blockResult](workers, readahead),
		bufs:   make(chan []byte, readahead+1),
		blocks: make(chan *format.Block, readahead+1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := 0; i < readahead+1; i++ {
		p.bufs <- nil // grown to block size on first use
		p.blocks <- new(format.Block)
	}
	if hdr.Variant == format.VariantBit {
		// Scratch is provisioned for achievable concurrency, not the raw
		// request: the ordered queue admits at most min(workers, pool size)
		// concurrent decodes, so extra requested workers must not pin extra
		// pooled decode tables.
		p.nsc = parallel.Workers(workers, workers)
		p.scs = make(chan *format.DecodeScratch, p.nsc)
		for i := 0; i < p.nsc; i++ {
			p.scs <- format.GetScratch()
		}
	}
	return p
}

// fetch is the pipeline's first stage: it reads compressed blocks and
// submits decode tasks in stream order. The terminal br.Next error
// (io.EOF, or a malformed-container error) is submitted through the same
// ordered queue, so the consumer sees every decoded block before it. A
// cancelled Reader context ends the stream the same way, with ctx.Err()
// delivered after the blocks already submitted. (For the default
// background context Done() is nil and the cases never fire.)
func (p *pipe) fetch(br *format.BlockReader) {
	defer close(p.done)
	defer p.ord.Finish()
	for {
		var blk *format.Block
		select {
		case blk = <-p.blocks:
		case <-p.stop:
			return
		case <-p.ctx.Done():
			p.ord.Submit(func() blockResult { return blockResult{err: p.ctx.Err()} })
			return
		}
		if err := br.Next(blk); err != nil {
			p.ord.Submit(func() blockResult { return blockResult{err: err} })
			return
		}
		var buf []byte
		select {
		case buf = <-p.bufs:
		case <-p.stop:
			return
		case <-p.ctx.Done():
			p.ord.Submit(func() blockResult { return blockResult{err: p.ctx.Err()} })
			return
		}
		b := blk
		if !p.ord.Submit(func() blockResult { return p.decode(b, buf) }) {
			return
		}
	}
}

// decode is the pipeline's second stage, run on the shared worker pool.
// The compressed block recycles as soon as its bytes are consumed; the
// decoded buffer travels onward to the consumer.
func (p *pipe) decode(blk *format.Block, buf []byte) blockResult {
	if cap(buf) < blk.RawLen {
		buf = make([]byte, blk.RawLen)
	}
	buf = buf[:blk.RawLen]
	// Cumulative accrual, as in advanceSync: pipelined decodes run on
	// pool workers but the trace's counters are atomic, so accrual from
	// here is safe.
	trace := obs.FromContext(p.ctx)
	var t0 time.Time
	if trace != nil {
		t0 = time.Now()
	}
	var err error
	if p.hdr.Variant == format.VariantByte {
		err = format.DecodeByteInto(buf, blk.Payload, blk.NumSeqs)
	} else {
		// Never blocks: Ordered admits at most nsc concurrent decodes, and
		// each returns its scratch before releasing its concurrency slot.
		sc := <-p.scs
		bb := bitBlockView(p.hdr, blk)
		err = bb.DecodeBitInto(buf, sc)
		p.scs <- sc
	}
	if trace != nil {
		trace.Cum(obs.StageBlockDecode, time.Since(t0), 1)
	}
	p.blocks <- blk
	if err != nil {
		return blockResult{buf: buf, err: fmt.Errorf("gompresso: %w", err)}
	}
	return blockResult{buf: buf}
}

// shutdown stops the fetch stage, waits for every in-flight decode, and
// returns the pipeline's scratch to the package pool. Idempotent.
func (p *pipe) shutdown() {
	p.once.Do(func() { close(p.stop) })
	p.ord.Stop()
	<-p.done
	p.ord.Wait()
	for i := 0; i < p.nsc; i++ {
		format.PutScratch(<-p.scs)
	}
	p.nsc = 0
}
