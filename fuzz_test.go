package gompresso_test

import (
	"bytes"
	"io"
	"testing"

	"gompresso"
)

// FuzzRoundTrip drives Compress→Decompress across both variants and DE
// modes, checking that the fused host fast path, the reference host pipeline
// and the streaming Reader all reproduce the input exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello hello gompresso"), uint8(1), uint8(1))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte("abcd"), 3000), uint8(1), uint8(2))
	f.Add(bytes.Repeat([]byte{0}, 1000), uint8(0), uint8(1))
	f.Add([]byte("<page><title>xml</title><text>decompression as fast as the hardware allows</text></page>"), uint8(1), uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, variantSel, deSel uint8) {
		if len(data) > 1<<20 {
			return
		}
		variant := gompresso.VariantByte
		if variantSel%2 == 1 {
			variant = gompresso.VariantBit
		}
		de := []gompresso.DEMode{gompresso.DEOff, gompresso.DEStrict, gompresso.DELit}[deSel%3]

		comp, _, err := gompresso.Compress(data, gompresso.Options{
			Variant: variant, DE: de, BlockSize: 8 << 10, // small blocks: more block boundaries per input
		})
		if err != nil {
			t.Fatalf("compress: %v", err)
		}

		fast, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{Engine: gompresso.EngineHost})
		if err != nil {
			t.Fatalf("fast path: %v", err)
		}
		if !bytes.Equal(fast, data) {
			t.Fatalf("fast path mismatch: got %d bytes, want %d", len(fast), len(data))
		}

		ref, _, err := gompresso.Decompress(comp, gompresso.DecompressOptions{
			Engine: gompresso.EngineHost, HostReference: true,
		})
		if err != nil {
			t.Fatalf("reference path: %v", err)
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("reference path mismatch")
		}

		r, err := gompresso.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		streamed, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if !bytes.Equal(streamed, data) {
			t.Fatalf("stream mismatch")
		}
		r.Close()
	})
}
